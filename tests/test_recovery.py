"""Broker crash/recovery battery: plans, re-convergence, resync, races.

Four layers:

* the **failure model** (:mod:`repro.network.recovery`): event validation,
  canonicalization, plan parsing and the pre-run schedule validator;
* **spanning-tree re-convergence** (:func:`rebuild_spanning_tree`):
  randomized crash/restart/partition sequences asserting the repaired tree
  is acyclic, spans exactly the survivors, avoids cut edges, and is
  deterministic per ``(seed, generation)``;
* **routing-state resync**: after a crash + repair + drain, every
  surviving broker's routing table must equal a from-scratch rebuild —
  computed here by an independent oracle (with covering disabled, broker
  ``b`` must know, per tree neighbour, exactly the anchors whose tree path
  enters through that neighbour), plus the cross-engine-bundle identity
  pattern of ``tests/test_control_plane.py``;
* **crash-timing races**: the PR 1 connect-epoch race with a repair round
  delivered between ``HandoffRequest`` and ``SubMigration`` (must not
  double-install), and the two-phase grant-path regression (a post-repair
  prepare must not wait on a grant from a permanently dead broker).
"""

from __future__ import annotations

import random

import pytest

from repro.conformance.scenarios import Scenario
from repro.errors import ConfigurationError, TopologyError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_system, drain_to_quiescence
from repro.network.recovery import (
    CrashEvent,
    CrashPlan,
    DEFAULT_REPAIR_DELAY_MS,
)
from repro.network.spanning_tree import EXCLUDED, rebuild_spanning_tree
from repro.network.topology import grid_topology
from repro.pubsub.filters import RangeFilter
from repro.pubsub.recovery import validate_plan
from repro.pubsub.system import PubSubSystem
from repro.workload.spec import WorkloadSpec

PROTOCOLS = ("mhh", "sub-unsub", "two-phase", "home-broker")

SPEC = WorkloadSpec(
    clients_per_broker=3,
    mobile_fraction=0.5,
    mean_connected_s=10.0,
    mean_disconnected_s=5.0,
    publish_interval_s=10.0,
    duration_s=120.0,
)


def _crash_config(protocol: str, plan: CrashPlan, **overrides) -> ExperimentConfig:
    kwargs = dict(
        protocol=protocol, grid_k=3, seed=9, workload=SPEC, crashes=plan
    )
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)


def _run(cfg: ExperimentConfig) -> PubSubSystem:
    system, workload = build_system(cfg)
    system.metrics.delivery.record_log = True
    system.run(until=cfg.workload.duration_ms)
    workload.stop()
    drain_to_quiescence(system, workload)
    return system


# ---------------------------------------------------------------------------
# the failure model: events, plans, parsing
# ---------------------------------------------------------------------------
def test_crash_event_validation():
    with pytest.raises(ConfigurationError):
        CrashEvent("explode", 10.0, broker=1)
    with pytest.raises(ConfigurationError):
        CrashEvent("crash", -1.0, broker=1)
    with pytest.raises(ConfigurationError):
        CrashEvent("crash", 10.0, broker=1, repair_delay_ms=-5.0)
    with pytest.raises(ConfigurationError):
        CrashEvent("partition", 10.0, broker=1)  # partitions carry an edge
    with pytest.raises(ConfigurationError):
        CrashEvent("crash", 10.0, edge=(0, 1))  # crashes carry a broker
    with pytest.raises(ConfigurationError):
        CrashEvent("partition", 10.0, edge=(2, 2))


def test_crash_event_edge_is_canonicalized():
    assert CrashEvent("partition", 5.0, edge=(3, 1)).edge == (1, 3)
    assert CrashEvent("partition", 5.0, edge=(3, 1)) == CrashEvent(
        "partition", 5.0, edge=(1, 3)
    )


def test_crash_plan_sorts_events_and_labels():
    plan = CrashPlan(
        events=(
            CrashEvent("restart", 9000.0, broker=2),
            CrashEvent("crash", 3000.0, broker=2),
        )
    )
    assert [e.kind for e in plan.events] == ["crash", "restart"]
    assert plan.active
    assert plan.label() == "c2@3000+r2@9000"
    empty = CrashPlan()
    assert not empty.active
    assert empty.label() == "none"


def test_crash_plan_parse_round_trip():
    plan = CrashPlan.parse(
        crashes=["3@12"],
        restarts=["3@50.5"],
        partitions=["4-1@20"],
        repair_delay_ms=250.0,
    )
    kinds = {(e.kind, e.time_ms) for e in plan.events}
    assert kinds == {
        ("crash", 12_000.0),
        ("restart", 50_500.0),
        ("partition", 20_000.0),
    }
    assert all(e.repair_delay_ms == 250.0 for e in plan.events)
    assert plan.events[1].edge == (1, 4)  # canonicalized


@pytest.mark.parametrize(
    "bad", ["x@12", "3@", "@12", "3", "1-2", "1-@3", "a-b@3"]
)
def test_crash_plan_parse_rejects_malformed_specs(bad):
    with pytest.raises(ConfigurationError):
        CrashPlan.parse(crashes=[bad] if "-" not in bad else [])
        CrashPlan.parse(partitions=[bad])
    with pytest.raises(ConfigurationError):
        CrashPlan.parse(partitions=[bad])


@pytest.mark.parametrize(
    "kwargs, fragments",
    [
        # the offending token and its flag-list position are both named,
        # so a typo in the fifth --broker-crash is findable directly
        (
            {"crashes": ["1@5", "x@12"]},
            ["bad crash spec 'x@12' (entry 2)", "broker id 'x'",
             "BROKER@SECONDS"],
        ),
        (
            {"crashes": ["4@notlate"]},
            ["bad crash spec '4@notlate' (entry 1)",
             "time 'notlate' is not a number"],
        ),
        (
            {"restarts": ["2@10", "3@20", "7"]},
            ["bad restart spec '7' (entry 3)", "missing '@'"],
        ),
        (
            {"partitions": ["0-1@5", "12@3"]},
            ["bad partition spec '12@3' (entry 2)",
             "edge '12' is missing '-'", "A-B@SECONDS"],
        ),
        (
            {"partitions": ["a-2@5"]},
            ["bad partition spec 'a-2@5' (entry 1)",
             "edge endpoint 'a' is not an integer"],
        ),
        (
            {"partitions": ["1-2@"]},
            ["bad partition spec '1-2@' (entry 1)", "time ''"],
        ),
    ],
)
def test_crash_plan_parse_errors_name_token_and_position(kwargs, fragments):
    with pytest.raises(ConfigurationError) as exc:
        CrashPlan.parse(**kwargs)
    message = str(exc.value)
    for fragment in fragments:
        assert fragment in message, (fragment, message)


# ---------------------------------------------------------------------------
# validate_plan: the pre-run schedule replay
# ---------------------------------------------------------------------------
def _plan(*events: CrashEvent) -> CrashPlan:
    return CrashPlan(events=tuple(events))


def test_validate_plan_accepts_a_legal_schedule():
    topo = grid_topology(3)
    validate_plan(
        topo,
        _plan(
            CrashEvent("crash", 1000.0, broker=4),
            CrashEvent("restart", 5000.0, broker=4),
            CrashEvent("partition", 7000.0, edge=(0, 1)),
        ),
    )


def test_validate_plan_rejects_unknown_broker_and_edge():
    topo = grid_topology(2)
    with pytest.raises(ConfigurationError):
        validate_plan(topo, _plan(CrashEvent("crash", 1.0, broker=99)))
    with pytest.raises(ConfigurationError):
        # 0 and 3 are opposite corners of the 2x2 grid: not a link
        validate_plan(topo, _plan(CrashEvent("partition", 1.0, edge=(0, 3))))


def test_validate_plan_rejects_state_machine_violations():
    topo = grid_topology(3)
    with pytest.raises(ConfigurationError):  # crash of an already-dead broker
        validate_plan(
            topo,
            _plan(
                CrashEvent("crash", 1.0, broker=4),
                CrashEvent("crash", 2.0, broker=4),
            ),
        )
    with pytest.raises(ConfigurationError):  # restart of a live broker
        validate_plan(topo, _plan(CrashEvent("restart", 1.0, broker=4)))


def test_validate_plan_rejects_disconnected_survivors():
    topo = grid_topology(2)
    # cutting both of corner 0's links strands it from the other survivors
    with pytest.raises(ConfigurationError):
        validate_plan(
            topo,
            _plan(
                CrashEvent("partition", 1.0, edge=(0, 1)),
                CrashEvent("partition", 2.0, edge=(0, 2)),
            ),
        )


# ---------------------------------------------------------------------------
# spanning-tree re-convergence: randomized failure sequences
# ---------------------------------------------------------------------------
def _tree_is_valid(tree, topo, alive, cut):
    """Acyclic + connected over exactly the survivors, avoiding cut edges."""
    assert sorted(u for u in range(topo.n) if tree.contains(u)) == sorted(alive)
    edges = list(tree.edges())
    assert len(edges) == len(alive) - 1  # spanning + acyclic
    for u, v in edges:
        assert topo.has_edge(u, v)
        assert (min(u, v), max(u, v)) not in cut
        assert u in alive and v in alive
    # every survivor walks its parent chain to the root
    for u in alive:
        hops = 0
        while tree.parent[u] != -1:
            u = tree.parent[u]
            hops += 1
            assert hops <= topo.n
        assert u == tree.root


@pytest.mark.parametrize("seed", range(15))
def test_rebuild_spanning_tree_properties_under_failure_sequences(seed):
    rnd = random.Random(seed)
    k = rnd.randrange(2, 5)
    topo = grid_topology(k)
    down: set[int] = set()
    cut: set[tuple[int, int]] = set()
    generation = 0
    for _round in range(6):
        # mutate the failure state: crash, restart, or cut a link — skipping
        # mutations that would disconnect the survivors (validate_plan
        # rejects those schedules before a run ever starts)
        roll = rnd.random()
        if roll < 0.4 and len(down) < topo.n - 2:
            candidate = rnd.choice([b for b in range(topo.n) if b not in down])
            trial = down | {candidate}
            if not _survivors_ok(topo, trial, cut):
                continue
            down = trial
        elif roll < 0.6 and down:
            down = down - {rnd.choice(sorted(down))}
        else:
            edge = rnd.choice(list(topo.edges()))[:2]
            trial_cut = cut | {edge}
            if not _survivors_ok(topo, down, trial_cut):
                continue
            cut = trial_cut
        generation += 1
        alive = [b for b in range(topo.n) if b not in down]
        tree = rebuild_spanning_tree(
            topo, alive, avoid_edges=cut, seed=seed, generation=generation
        )
        _tree_is_valid(tree, topo, set(alive), cut)
        again = rebuild_spanning_tree(
            topo, alive, avoid_edges=cut, seed=seed, generation=generation
        )
        assert list(tree.parent) == list(again.parent)  # deterministic
        assert all(
            tree.parent[b] == EXCLUDED for b in down
        )  # dead brokers are excluded, not grafted


def _survivors_ok(topo, down, cut) -> bool:
    alive = [u for u in range(topo.n) if u not in down]
    if not alive:
        return False
    seen = {alive[0]}
    stack = [alive[0]]
    while stack:
        u = stack.pop()
        for v in topo.neighbors(u):
            if v in down or v in seen:
                continue
            if (min(u, v), max(u, v)) in cut:
                continue
            seen.add(v)
            stack.append(v)
    return len(seen) == len(alive)


def test_rebuild_spanning_tree_raises_on_disconnected_survivors():
    topo = grid_topology(2)
    with pytest.raises(TopologyError):
        rebuild_spanning_tree(
            topo, [0, 1, 2, 3], avoid_edges=[(0, 1), (0, 2)], seed=1
        )


# ---------------------------------------------------------------------------
# routing-state resync: the from-scratch differential oracle
# ---------------------------------------------------------------------------
def test_resynced_routing_state_equals_from_scratch_rebuild():
    """With covering off, the post-repair tables are fully predictable: a
    broker's received-filter set per tree neighbour must be exactly the
    anchors whose tree path enters through that neighbour — computed here
    independently of the repair machinery's flood."""
    plan = _plan(CrashEvent("crash", 40_000.0, broker=4))
    system = _run(_crash_config("mhh", plan, covering_enabled=False))
    assert system.recovery is not None and system.recovery.repairs == 1
    tree = system.tree
    live = {b: br for b, br in system.brokers.items() if b != 4}
    anchors = {
        key: bid
        for bid, broker in live.items()
        for key in broker.table.clients
    }
    # exactly one anchor entry per client survives the repair + drain
    # (MHH anchor keys are ("sub", client_id))
    assert sorted(key[-1] for key in anchors) == sorted(system.clients)
    for bid, broker in live.items():
        got = broker.table.snapshot_broker_filters()
        for nbr in tree.neighbors(bid):
            expected = {
                key
                for key, anchor in anchors.items()
                if anchor != bid and tree.next_hop(bid, anchor) == nbr
            }
            assert got.get(nbr, set()) == expected, (
                f"broker {bid} from neighbour {nbr}"
            )


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_crash_scenarios_are_engine_bundle_identical(protocol):
    """The control-plane pattern at whole-system scale: a crash scenario
    replayed under the all-legacy engine bundle must land in the identical
    final state — delivery log, tree, and every surviving table."""
    plan = _plan(
        CrashEvent("crash", 30_000.0, broker=7),
        CrashEvent("restart", 70_000.0, broker=7),
    )

    def state(cfg):
        system = _run(cfg)
        tables = {
            bid: (
                broker.table.snapshot_broker_filters(),
                broker.table.snapshot_advertised(),
                sorted(broker.table.clients),
            )
            for bid, broker in system.brokers.items()
        }
        return (
            tuple(system.metrics.delivery.log),
            list(system.tree.parent),
            tables,
            system.metrics.delivery.stats.crash_lost,
        )

    fast = state(_crash_config(protocol, plan))
    legacy = state(
        _crash_config(
            protocol,
            plan,
            sim_engine="heap",
            matching_engine="scan",
            covering_index=False,
        )
    )
    assert fast == legacy


def test_restarted_broker_rejoins_with_consistent_mirror():
    plan = _plan(
        CrashEvent("crash", 30_000.0, broker=4),
        CrashEvent("restart", 70_000.0, broker=4),
    )
    system = _run(_crash_config("mhh", plan))
    assert system.recovery is not None
    assert not system.recovery.down
    # all brokers live again: the advertisement mirror must hold everywhere
    system.check_mirror_invariant()
    assert system.metrics.delivery.stats.missing == 0


def test_crash_lane_scenarios_replay_identically_from_one_seed():
    a = Scenario.crash_from_seed(1234)
    b = Scenario.crash_from_seed(1234)
    assert a == b
    assert a.crashes.active and not a.faults.active
    forced = Scenario.crash_from_seed(1234, "two-phase")
    assert forced.protocol == "two-phase"
    assert forced.crashes == a.crashes  # the failure draw ignores protocol


# ---------------------------------------------------------------------------
# crash-timing races
# ---------------------------------------------------------------------------
def test_connect_epoch_race_survives_mid_handoff_repair():
    """PR 1's connect-epoch race under crash timing: a repair round landing
    between ``HandoffRequest`` and ``SubMigration`` reinstalls the
    subscription at the new anchor; the stale in-flight ``SubMigration``
    (previous generation) must be discarded, not double-installed."""
    # timings on a 2x2 grid: reconnect at t=2000 -> broker 1 learns at 2020
    # (uplink) -> HandoffRequest reaches broker 0 at 2030 -> SubMigration
    # reaches broker 1 at 2040. The crash at 2035 (repair_delay 0: the
    # repair runs in the same instant) lands exactly inside that window.
    plan = _plan(CrashEvent("crash", 2035.0, broker=3, repair_delay_ms=0.0))
    system = PubSubSystem(grid_k=2, protocol="mhh", seed=5, crashes=plan)
    sub = system.add_client(RangeFilter(0.0, 0.2), broker=0, mobile=True)
    pub = system.add_client(RangeFilter(0.8, 0.9), broker=2)
    sub.connect(0)
    pub.connect(2)
    system.run(until=1000.0)
    sub.disconnect()
    system.clock.call_later(1000.0, sub.connect, 1)
    system.clock.call_later(2000.0, pub.publish, 0.1)
    system.run()
    assert system.protocol.quiescent()
    assert system.recovery is not None and system.recovery.repairs == 1
    entries = [
        e
        for bid, broker in system.brokers.items()
        if bid != 3
        for e in broker.table.entries_for_client(sub.id)
    ]
    assert len(entries) == 1, "subscription double- or un-installed"
    assert entries[0].live
    st = system.metrics.delivery.stats
    assert (st.expected, st.delivered, st.duplicates, st.missing) == (
        1, 1, 0, 0,
    )


def test_two_phase_prepare_skips_permanently_dead_lane_brokers():
    """Regression: post-repair two-phase handoffs whose transfer path
    crosses a dead broker must not wait for its grant (the run would
    deadlock at drain — the dead broker never answers)."""
    # broker 4 is the centre of the 3x3 grid: every cross-grid transfer
    # path runs through it, so a permanent crash exercises the skip
    plan = _plan(CrashEvent("crash", 30_000.0, broker=4))
    system = _run(_crash_config("two-phase", plan))
    assert system.protocol.quiescent()
    assert system.metrics.delivery.stats.missing == 0
