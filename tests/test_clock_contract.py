"""The Clock facade contract, run against BOTH implementations.

VirtualClock (deterministic virtual time, parity tests) and AsyncioClock
(model time over a real event loop, the soak harness) share the heap in
``_HeapClock`` but drive it through completely different engines — a
pull-based ``run()`` loop vs armed loop timers. The kernel relies on
identical semantics from both:

* callbacks fire in ``(when, submission)`` order — equal-deadline entries
  run in the order they were scheduled, whether cancellable or FIFO;
* zero-delay chains scheduled by a firing callback run in the same burst;
* cancellation is idempotent, keeps the pending count honest, and a
  post-fire cancel is a harmless no-op;
* scheduling into the past is rejected loudly;
* ``now`` is monotone across a run.

Every case below is parametrized over both clocks; the VirtualClock-only
``run(until=...)`` window semantics (the simulator's epoch-advance
behaviour) get their own cases at the bottom.
"""

from __future__ import annotations

import pytest

from repro.drivers.live import AsyncioClock, VirtualClock
from repro.errors import SchedulingError

#: generous wall budget for the asyncio runs; they finish in milliseconds
_IDLE_TIMEOUT_S = 20.0


@pytest.fixture(params=["virtual", "asyncio"])
def clock(request):
    if request.param == "virtual":
        yield VirtualClock()
    else:
        c = AsyncioClock(time_scale=10.0)
        yield c
        c.loop.close()


def _drain(clock) -> None:
    """Run the clock until nothing is pending, whichever engine it is."""
    if isinstance(clock, VirtualClock):
        clock.run()
    else:
        idle = clock.loop.run_until_complete(
            clock.wait_idle(timeout_s=_IDLE_TIMEOUT_S)
        )
        assert idle, "asyncio clock failed to drain within the wall budget"


# ---------------------------------------------------------------------------
# ordering
# ---------------------------------------------------------------------------
def test_fires_in_time_then_submission_order(clock):
    fired = []
    clock.call_later(50.0, fired.append, "later")
    clock.call_later(10.0, fired.append, "a")
    clock.call_later_fifo(10.0, fired.append, "b")
    clock.call_later(10.0, fired.append, "c")
    _drain(clock)
    assert fired == ["a", "b", "c", "later"]
    assert clock.pending == 0


def test_zero_delay_chains_run_in_one_burst(clock):
    fired = []

    def chain(n):
        fired.append(n)
        if n:
            clock.call_later(0.0, chain, n - 1)

    clock.call_later(0.0, chain, 3)
    _drain(clock)
    assert fired == [3, 2, 1, 0]


def test_callbacks_scheduled_while_firing_keep_order(clock):
    fired = []

    def first():
        fired.append("first")
        clock.call_later(0.0, fired.append, "nested-a")
        clock.call_later_fifo(0.0, fired.append, "nested-b")

    clock.call_later(5.0, first)
    clock.call_later(5.0, fired.append, "second")
    _drain(clock)
    assert fired == ["first", "second", "nested-a", "nested-b"]


def test_now_is_monotone_across_a_run(clock):
    stamps = []
    for delay in (30.0, 10.0, 20.0, 10.0):
        clock.call_later(delay, lambda: stamps.append(clock.now))
    _drain(clock)
    assert stamps == sorted(stamps)
    assert len(stamps) == 4


# ---------------------------------------------------------------------------
# cancellation
# ---------------------------------------------------------------------------
def test_cancel_is_idempotent_and_tracks_pending(clock):
    fired = []
    handle = clock.call_later(10.0, fired.append, "no")
    clock.call_later(20.0, fired.append, "yes")
    assert clock.pending == 2
    handle.cancel()
    handle.cancel()
    assert clock.pending == 1
    _drain(clock)
    assert fired == ["yes"]
    # cancelling after the fire must not corrupt the pending count
    done = clock.call_later(10.0, fired.append, "again")
    _drain(clock)
    done.cancel()
    assert clock.pending == 0
    assert fired == ["yes", "again"]


def test_cancel_during_a_burst_suppresses_the_entry(clock):
    fired = []
    victim = clock.call_later(10.0, fired.append, "victim")
    clock.call_later(5.0, victim.cancel)
    clock.call_later(10.0, fired.append, "kept")
    _drain(clock)
    assert fired == ["kept"]
    assert clock.pending == 0


# ---------------------------------------------------------------------------
# guard rails
# ---------------------------------------------------------------------------
def test_rejects_negative_delay(clock):
    with pytest.raises(SchedulingError):
        clock.call_later(-1.0, lambda: None)
    with pytest.raises(SchedulingError):
        clock.call_later_fifo(-0.001, lambda: None)


def test_asyncio_clock_rejects_nonpositive_time_scale():
    with pytest.raises(SchedulingError):
        AsyncioClock(time_scale=0.0)
    with pytest.raises(SchedulingError):
        AsyncioClock(time_scale=-2.0)


# ---------------------------------------------------------------------------
# VirtualClock run-until window semantics (the simulator's epoch advance)
# ---------------------------------------------------------------------------
def test_virtual_run_until_advances_clock_like_simulator():
    clock = VirtualClock()
    fired = []
    clock.call_later(10.0, fired.append, "x")
    clock.run(until=4.0)
    assert fired == [] and clock.now == 4.0
    clock.run(until=25.0)
    assert fired == ["x"] and clock.now == 25.0


def test_virtual_run_until_in_the_past_never_rewinds_now():
    clock = VirtualClock(start_time=100.0)
    clock.run(until=5.0)
    assert clock.now == 100.0
