"""Unit + property tests for covering-based filter-set reduction."""

from hypothesis import given, settings, strategies as st

from repro.pubsub.covering import covers, is_covered_by_set, reduce_by_covering
from repro.pubsub.events import Notification
from repro.pubsub.filters import RangeFilter


def ev(x):
    return Notification(0, 0, 0, 0.0, x)


def test_reduce_drops_contained_interval():
    kept = reduce_by_covering({
        "wide": RangeFilter(0.0, 0.6),
        "narrow": RangeFilter(0.1, 0.2),
    })
    assert set(kept) == {"wide"}


def test_reduce_keeps_overlapping_but_uncontained():
    kept = reduce_by_covering({
        "a": RangeFilter(0.0, 0.5),
        "b": RangeFilter(0.3, 0.8),
    })
    assert set(kept) == {"a", "b"}


def test_reduce_equal_filters_keeps_exactly_one():
    kept = reduce_by_covering({
        "k1": RangeFilter(0.2, 0.4),
        "k2": RangeFilter(0.2, 0.4),
        "k3": RangeFilter(0.2, 0.4),
    })
    assert len(kept) == 1


def test_reduce_empty():
    assert reduce_by_covering({}) == {}


def test_reduce_chain_keeps_only_outermost():
    kept = reduce_by_covering({
        i: RangeFilter(0.5 - 0.1 * i, 0.5 + 0.1 * i) for i in range(1, 5)
    })
    assert set(kept) == {4}


def test_is_covered_by_set():
    existing = [RangeFilter(0.0, 0.4), RangeFilter(0.6, 1.0)]
    assert is_covered_by_set(RangeFilter(0.1, 0.3), existing)
    assert not is_covered_by_set(RangeFilter(0.3, 0.7), existing)


def test_covers_function_delegates():
    assert covers(RangeFilter(0.0, 1.0), RangeFilter(0.2, 0.3))


intervals = st.lists(
    st.tuples(st.floats(0, 1, allow_nan=False), st.floats(0, 1, allow_nan=False)),
    min_size=0,
    max_size=12,
).map(lambda xs: {i: RangeFilter(min(a, b), max(a, b)) for i, (a, b) in enumerate(xs)})


@settings(max_examples=150, deadline=None)
@given(filters=intervals, x=st.floats(0, 1, allow_nan=False))
def test_property_reduction_preserves_matching_semantics(filters, x):
    """An event matches the reduced set iff it matches the original set."""
    kept = reduce_by_covering(filters)
    orig = any(f.matches(ev(x)) for f in filters.values())
    red = any(f.matches(ev(x)) for f in kept.values())
    assert orig == red


@settings(max_examples=150, deadline=None)
@given(filters=intervals)
def test_property_reduction_is_subset_and_minimal(filters):
    kept = reduce_by_covering(filters)
    assert set(kept) <= set(filters)
    # every dropped filter is covered by some kept one
    for key, f in filters.items():
        if key not in kept:
            assert any(g.covers(f) for g in kept.values())
    # no kept filter is covered by a different kept filter unless equal-keyed
    for key, f in kept.items():
        for other_key, g in kept.items():
            if other_key != key and g.covers(f):
                # mutual covering would have been deduplicated
                assert not f.covers(g) or key == other_key


@settings(max_examples=100, deadline=None)
@given(filters=intervals)
def test_property_reduction_idempotent(filters):
    once = reduce_by_covering(filters)
    twice = reduce_by_covering(once)
    assert set(once) == set(twice)
