"""Unit tests for utility helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.util import (
    IdAllocator,
    QueueRef,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    chunked,
)


class TestIdAllocator:
    def test_streams_independent(self):
        ids = IdAllocator()
        assert ids.next("a") == 0
        assert ids.next("a") == 1
        assert ids.next("b") == 0
        assert ids.next("a") == 2

    def test_peek_streams(self):
        ids = IdAllocator()
        ids.next("z")
        ids.next("a")
        assert ids.peek_streams() == ["a", "z"]


class TestChunked:
    def test_even_split(self):
        assert list(chunked([1, 2, 3, 4], 2)) == [[1, 2], [3, 4]]

    def test_remainder(self):
        assert list(chunked([1, 2, 3, 4, 5], 2)) == [[1, 2], [3, 4], [5]]

    def test_oversized_chunk(self):
        assert list(chunked([1, 2], 10)) == [[1, 2]]

    def test_empty(self):
        assert list(chunked([], 3)) == []

    def test_bad_size(self):
        with pytest.raises(ValueError):
            list(chunked([1], 0))


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 1.5) == 1.5
        with pytest.raises(ConfigurationError):
            check_positive("x", 0)

    def test_check_non_negative(self):
        assert check_non_negative("x", 0) == 0
        with pytest.raises(ConfigurationError):
            check_non_negative("x", -0.1)

    def test_check_probability(self):
        assert check_probability("x", 0.5) == 0.5
        with pytest.raises(ConfigurationError):
            check_probability("x", 1.01)

    def test_check_in_range(self):
        assert check_in_range("x", 3, 1, 5) == 3
        with pytest.raises(ConfigurationError):
            check_in_range("x", 9, 1, 5)


def test_queue_ref_str():
    assert "b3" in str(QueueRef(3, 7))
