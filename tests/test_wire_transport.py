"""Socket-transport parity: broker processes over real TCP vs the simulator.

The wire tentpole's contract is that moving brokers into their own OS
processes — real sockets, real framing, real keepalives — changes *nothing*
observable: the same fuzzer scenario must produce the identical delivery
log, counters and invariant-matrix verdict as the in-process simulated
driver, for every protocol. A second battery severs live node connections
mid-stream and requires the session-resume layer to restore byte-identical
outcomes (no double-applied effects, no swallowed ones).

A digest gate pins the simulated driver itself: seven fixed fuzzer seeds
must keep their exact outcome hashes, proving the wire subsystem landed
without perturbing the kernel.
"""

from __future__ import annotations

import dataclasses
import hashlib

import pytest

from repro.conformance.fuzzer import ScenarioOutcome, check_invariants, run_scenario
from repro.conformance.scenarios import PROTOCOLS, Scenario
from repro.errors import ConfigurationError
from repro.wire.harness import run_socket_scenario

#: the pinned parity scenario: k=2 grid, hotspot mobility, lossy+duplicating
#: wireless links — handoffs, queue migrations and fault draws all active
PARITY_SEED = 303

#: outcome fields the socket run must reproduce exactly (engine_bundle and
#: sim_events describe the engine, not the behaviour)
_PARITY_FIELDS = tuple(
    f.name
    for f in dataclasses.fields(ScenarioOutcome)
    if f.name not in ("engine_bundle", "sim_events")
)


def _socket_outcome(system) -> ScenarioOutcome:
    """Snapshot a socket-harness run in the fuzzer's outcome shape."""
    stats = system.metrics.delivery.stats
    injector = system.fault_injector
    meter = system.metrics.traffic
    return ScenarioOutcome(
        engine_bundle=("socket", "counting", True, False),
        published=stats.published,
        expected=stats.expected,
        delivered=stats.delivered,
        duplicates=stats.duplicates,
        order_violations=stats.order_violations,
        lost=stats.lost_explicit,
        missing=stats.missing,
        handoffs=system.metrics.handoffs.handoff_count,
        injected_drops=injector.drops if injector else 0,
        injected_dups=injector.dups_delivered if injector else 0,
        meter_drops=meter.total_dropped(),
        meter_dups=meter.total_duplicated(),
        sim_events=0,
        recovered=stats.recovered,
        shed=stats.shed,
        retransmits=meter.total_retransmits(),
        breaker_trips=meter.total_breaker_trips(),
        wired_by_category=dict(meter.by_category()),
        delivery_log=tuple(system.metrics.delivery.log),
    )


def _parity_diff(sim: ScenarioOutcome, sock: ScenarioOutcome) -> list:
    diffs = []
    for name in _PARITY_FIELDS:
        a, b = getattr(sim, name), getattr(sock, name)
        if name == "wired_by_category":
            # keepalive shedding is wire-only bookkeeping; every *traffic*
            # category must still match hop for hop
            b = {k: v for k, v in b.items() if not k.startswith("wire_")}
        if a != b:
            diffs.append((name, a, b))
    return diffs


def _scenario(protocol: str) -> Scenario:
    return dataclasses.replace(Scenario.from_seed(PARITY_SEED), protocol=protocol)


# ---------------------------------------------------------------------------
# the parity gate: four protocols over loopback TCP
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_socket_transport_matches_simulated_driver(protocol):
    scenario = _scenario(protocol)
    sim = run_scenario(scenario)
    system = run_socket_scenario(scenario.config(), processes=2)
    sock = _socket_outcome(system)
    assert _parity_diff(sim, sock) == []
    assert sock.delivery_log, "degenerate run: no deliveries at all"
    # the socket run must clear the same invariant matrix the fuzzer
    # applies to the simulated engines
    assert check_invariants(scenario, sock) == []
    # and the run genuinely crossed process boundaries
    stats = system.net.stats
    assert stats.dispatches > 0 and stats.effects > 0
    assert stats.bytes_tx > 0 and stats.bytes_rx > 0


def test_three_process_split_is_also_identical():
    """Ownership partitioning must not matter: 2-way and 3-way splits of
    the same grid produce the identical outcome."""
    scenario = _scenario("mhh")
    sim = run_scenario(scenario)
    system = run_socket_scenario(scenario.config(), processes=3)
    assert _parity_diff(sim, _socket_outcome(system)) == []


# ---------------------------------------------------------------------------
# mid-stream connection kills: resume must be invisible
# ---------------------------------------------------------------------------
def test_killed_connections_resume_with_identical_outcome():
    scenario = _scenario("mhh")
    sim = run_scenario(scenario)

    def arm(transport):
        # sever each node's TCP connection mid-dispatch-stream, at
        # different points, so both resume paths (lost dispatch frame,
        # lost effect suffix) get exercised across the run
        transport.peers[0].kill_after_frames = 25
        transport.peers[1].kill_after_frames = 60

    system = run_socket_scenario(scenario.config(), processes=2, tweak=arm)
    sock = _socket_outcome(system)
    stats = system.net.stats
    assert stats.resumes >= 2, "the kill hooks never fired"
    assert all(p.kills == 1 for p in system.net.peers)
    # Each kill lands mid-dispatch (after an effect/query frame, before the
    # "done" frame), so the node MUST retransmit the severed suffix of its
    # outbox for the run to complete at all -- make that visible.
    assert stats.frames_replayed > 0
    assert _parity_diff(sim, sock) == []
    assert check_invariants(scenario, sock) == []


def test_repeated_kills_on_one_connection_still_converge():
    scenario = _scenario("two-phase")
    sim = run_scenario(scenario)
    killer_state = {"count": 0}

    def rearming_kill(transport):
        peer = transport.peers[0]
        original = peer.kill
        def kill_and_rearm():
            original()
            killer_state["count"] += 1
            if killer_state["count"] < 4:
                peer.kill_after_frames = 30
        peer.kill = kill_and_rearm
        peer.kill_after_frames = 30

    system = run_socket_scenario(
        scenario.config(), processes=2, tweak=rearming_kill
    )
    assert killer_state["count"] >= 2
    assert system.net.stats.resumes >= killer_state["count"]
    assert _parity_diff(sim, _socket_outcome(system)) == []


# ---------------------------------------------------------------------------
# configuration gates
# ---------------------------------------------------------------------------
def test_harness_refuses_unsupported_layers():
    reliable = Scenario.reliability_from_seed(PARITY_SEED, protocol="mhh")
    with pytest.raises(ConfigurationError):
        run_socket_scenario(reliable.config(), processes=2)
    crashed = Scenario.crash_from_seed(PARITY_SEED, protocol="mhh")
    with pytest.raises(ConfigurationError):
        run_socket_scenario(crashed.config(), processes=2)
    with pytest.raises(ConfigurationError):
        run_socket_scenario(_scenario("mhh").config(), processes=0)


# ---------------------------------------------------------------------------
# the kernel-untouched gate: pinned simulated-driver digests
# ---------------------------------------------------------------------------
#: sha256 over the full outcome tuple of Scenario.from_seed(seed) under the
#: default engine bundle. These digests predate the wire subsystem; any
#: drift means the kernel's behaviour changed, which the wire PR promises
#: not to do.
SIM_DIGESTS = {
    101: "ca615defd9c58c18f077e87a528323883a435bca3677890d42eab64b99f7c0e5",
    202: "3d09ccab15411e1872e9553df8248f71dde3f1334a3ad96e53f9ed10c1bc2550",
    303: "5ec14fe71c1eb9f867168f81b69b1e88373f2784a3e8d5ca3365f453ffd0b9e1",
    404: "09f35c576eedc2a9769eb621550c59b04ee84cbd2c4ab0ba1b402a7bf07d0056",
    505: "133697096acef1614dfe39fdb3f3e0875a35333ece44403ab387305556520f20",
    606: "b385e3fbd6a81a2b8e7448b62b37d70a3b9f3ca2e48ad17258ce6137351ae57f",
    707: "a0ff608f047103dae32e9f165d28f3f00263607951325e01cda0fc8558752ae6",
}


def _digest(o: ScenarioOutcome) -> str:
    blob = repr((
        o.published, o.expected, o.delivered, o.duplicates,
        o.order_violations, o.lost, o.missing, o.handoffs,
        o.injected_drops, o.injected_dups, o.sim_events,
        sorted(o.wired_by_category.items()), o.delivery_log,
    ))
    return hashlib.sha256(blob.encode()).hexdigest()


@pytest.mark.parametrize("seed", sorted(SIM_DIGESTS))
def test_simulated_driver_outcomes_are_unchanged(seed):
    assert _digest(run_scenario(Scenario.from_seed(seed))) == SIM_DIGESTS[seed]
