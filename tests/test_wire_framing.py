"""Adversarial framing battery for :mod:`repro.wire.framing`.

The incremental decoder must survive everything a TCP stream can do to a
frame: tear it at any byte offset, flip CRC bits, lie about the length,
or trickle a multi-frame burst one byte at a time. No exception other
than a typed :class:`FrameError` may escape, every rejection must be
counted, and a poisoned decoder must stay dead.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wire.framing import (
    HEADER_SIZE,
    MAX_FRAME_SIZE,
    FrameCorruptionError,
    FrameDecoder,
    FrameError,
    FrameTooLargeError,
    encode_frame,
    iter_frames,
)

PAYLOADS = [b"", b"x", b"hello wire", bytes(range(256)), b"z" * 4096]


# ---------------------------------------------------------------------------
# the happy path, shredded
# ---------------------------------------------------------------------------
def test_single_frame_round_trip():
    dec = FrameDecoder()
    assert dec.feed(encode_frame(b"payload")) == [b"payload"]
    assert dec.frames == 1
    assert dec.buffered == 0


def test_torn_frames_at_every_byte_offset():
    frame = encode_frame(b"torn-frame-payload")
    for cut in range(1, len(frame)):
        dec = FrameDecoder()
        assert dec.feed(frame[:cut]) == []
        assert dec.buffered == cut
        assert dec.feed(frame[cut:]) == [b"torn-frame-payload"]
        assert dec.buffered == 0
        assert dec.frames == 1


def test_concatenated_stream_fed_one_byte_at_a_time():
    stream = b"".join(encode_frame(p) for p in PAYLOADS)
    dec = FrameDecoder()
    out = []
    for i in range(len(stream)):
        out.extend(dec.feed(stream[i:i + 1]))
    assert out == PAYLOADS
    assert dec.frames == len(PAYLOADS)
    assert dec.bytes_in == len(stream)
    assert dec.buffered == 0


@settings(max_examples=50, deadline=None)
@given(
    payloads=st.lists(st.binary(max_size=200), min_size=1, max_size=8),
    chunk=st.integers(min_value=1, max_value=64),
)
def test_any_chunking_reassembles_any_stream(payloads, chunk):
    stream = b"".join(encode_frame(p) for p in payloads)
    dec = FrameDecoder()
    out = []
    for i in range(0, len(stream), chunk):
        out.extend(dec.feed(stream[i:i + chunk]))
    assert out == payloads


# ---------------------------------------------------------------------------
# corruption
# ---------------------------------------------------------------------------
def test_flipped_bit_anywhere_is_a_typed_error():
    """Flip one bit at every position of a frame; the decoder must raise a
    FrameError subclass (never anything else) or — when the flip lands in
    the length prefix and merely shortens/merges frames — stay in sync
    enough to reject the CRC."""
    frame = encode_frame(b"bit-flip-target") + encode_frame(b"second")
    for pos in range(len(frame)):
        for bit in range(8):
            mutated = bytearray(frame)
            mutated[pos] ^= 1 << bit
            dec = FrameDecoder(max_frame=1024)
            try:
                got = dec.feed(bytes(mutated))
            except FrameError:
                assert dec.dead
                assert dec.corrupt + dec.oversize == 1
            else:
                # a length-prefix flip can re-partition the stream; whatever
                # survives decoding must not silently equal the original
                assert got != [b"bit-flip-target", b"second"] or dec.buffered


def test_crc_mismatch_increments_counter_and_kills_decoder():
    frame = bytearray(encode_frame(b"payload"))
    frame[-1] ^= 0xFF
    dec = FrameDecoder()
    with pytest.raises(FrameCorruptionError):
        dec.feed(bytes(frame))
    assert dec.dead
    assert dec.corrupt == 1
    # poisoned: every further feed raises, buffers nothing
    with pytest.raises(FrameCorruptionError):
        dec.feed(b"more")
    assert dec.buffered == 0


def test_oversize_length_prefix_rejected_before_buffering_the_body():
    import struct

    header = struct.pack("<II", MAX_FRAME_SIZE + 1, 0)
    dec = FrameDecoder()
    with pytest.raises(FrameTooLargeError):
        dec.feed(header)
    assert dec.oversize == 1
    assert dec.dead
    assert dec.buffered == 0


def test_absurd_length_prefix_from_random_junk():
    dec = FrameDecoder(max_frame=64)
    with pytest.raises(FrameTooLargeError):
        dec.feed(b"\xff" * HEADER_SIZE)
    assert dec.oversize == 1


def test_encode_refuses_oversize_payload():
    with pytest.raises(FrameTooLargeError):
        encode_frame(b"x" * (MAX_FRAME_SIZE + 1))


@settings(max_examples=80, deadline=None)
@given(junk=st.binary(max_size=256))
def test_no_exception_escapes_the_framing_layer(junk):
    dec = FrameDecoder(max_frame=128)
    try:
        dec.feed(junk)
    except FrameError:
        assert dec.dead
    # anything else propagates and fails the test


def test_desynced_stream_dies_instead_of_resyncing():
    """Framing has no resync marker: one byte of junk ahead of a valid
    frame shifts the header window, and the decoder must reject the
    stream (here: the shifted bytes read as an oversize length) rather
    than hunt for the next plausible header."""
    frame = encode_frame(b"desync-victim")
    dec = FrameDecoder(max_frame=128)
    with pytest.raises(FrameError):
        dec.feed(b"\xff" + frame)
    assert dec.dead
    assert dec.corrupt + dec.oversize == 1


# ---------------------------------------------------------------------------
# counters + helpers
# ---------------------------------------------------------------------------
def test_counters_account_every_frame_and_byte():
    stream = b"".join(encode_frame(p) for p in PAYLOADS)
    dec = FrameDecoder()
    dec.feed(stream)
    assert dec.frames == len(PAYLOADS)
    assert dec.bytes_in == len(stream)
    assert dec.corrupt == 0 and dec.oversize == 0


def test_iter_frames_round_trip_and_trailing_byte_rejection():
    stream = b"".join(encode_frame(p) for p in PAYLOADS)
    assert list(iter_frames(stream)) == PAYLOADS
    with pytest.raises(FrameCorruptionError):
        list(iter_frames(stream + b"\x01"))
