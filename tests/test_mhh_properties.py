"""Property-based tests: MHH guarantees under arbitrary movement schedules.

Hypothesis drives randomized interleavings of publishes, disconnects and
reconnects (including pathologically fast ones) and asserts the paper's
headline guarantee: exactly-once, per-publisher-ordered delivery with no
loss, always ending in a quiescent system.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.pubsub.filters import RangeFilter
from repro.pubsub.system import PubSubSystem


# one schedule step: (action, param, dwell_ms)
steps = st.lists(
    st.tuples(
        st.sampled_from(["move", "publish", "wait"]),
        st.integers(0, 8),
        st.floats(min_value=5.0, max_value=4000.0),
    ),
    min_size=1,
    max_size=14,
)


def run_schedule(seed, schedule, k=3, batch=3):
    system = PubSubSystem(
        grid_k=k, protocol="mhh", seed=seed, migration_batch_size=batch
    )
    sub = system.add_client(RangeFilter(0.0, 1.0), broker=0, mobile=True)
    pub = system.add_client(RangeFilter(2.0, 2.0), broker=k * k - 1)
    sub.connect(0)
    pub.connect(k * k - 1)
    system.run(until=2000.0)
    for action, param, dwell in schedule:
        if action == "move":
            if sub.connected:
                sub.disconnect()
                system.run(until=system.sim.now + dwell / 3.0)
            sub.connect(param % (k * k))
        elif action == "publish":
            pub.publish(param / 10.0)
        system.run(until=system.sim.now + dwell)
    if not sub.connected:
        sub.connect(sub.last_broker)
    system.sim.run()
    return system, sub


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 20), schedule=steps)
def test_property_exactly_once_ordered_no_loss(seed, schedule):
    system, _sub = run_schedule(seed, schedule)
    stats = system.metrics.delivery.stats
    assert system.sim.peek() is None
    assert system.protocol.quiescent()
    assert stats.duplicates == 0
    assert stats.order_violations == 0
    assert stats.lost_explicit == 0
    assert stats.missing == 0, system.metrics.delivery.per_client_missing()


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 20), schedule=steps)
def test_property_mirror_invariant_holds_after_settling(seed, schedule):
    system, _sub = run_schedule(seed, schedule)
    system.check_mirror_invariant()


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10), schedule=steps)
def test_property_no_stranded_queues(seed, schedule):
    """After settling with the client connected, no queues remain."""
    system, sub = run_schedule(seed, schedule)
    leftovers = [
        q
        for b in system.brokers.values()
        for q in b.queues.values()
        if q.client == sub.id and len(q) > 0
    ]
    assert leftovers == []


# Regression: connect-connect races once stranded the subscription away
# from a live client (a stale handoff request reached the settled anchor
# after the client had already come back) or deadlocked pending requests.
# Connect-epoch stamping (ConnectMessage/HandoffRequest/SubMigration) now
# supersedes stale requests; these schedules are the minimal falsifying
# examples hypothesis found before the fix.
@pytest.mark.parametrize(
    "schedule",
    [
        [("move", 5, 5.0), ("move", 0, 5.0), ("publish", 0, 5.0)],
        [("move", 5, 5.0), ("move", 0, 5.0), ("move", 1, 5.0)],
        [("move", 2, 5.0), ("move", 0, 5.0), ("move", 1, 5.0),
         ("move", 0, 5.0), ("move", 1, 5.0)],
    ],
)
def test_regression_rapid_reconnect_races(schedule):
    system, _sub = run_schedule(0, schedule)
    stats = system.metrics.delivery.stats
    assert system.sim.peek() is None
    assert system.protocol.quiescent()
    assert stats.duplicates == 0
    assert stats.order_violations == 0
    assert stats.missing == 0, system.metrics.delivery.per_client_missing()


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 10),
    schedules=st.lists(steps, min_size=2, max_size=3),
)
def test_property_concurrent_movers_independent(seed, schedules):
    """Several mobile clients moving on independent schedules."""
    k = 3
    system = PubSubSystem(
        grid_k=k, protocol="mhh", seed=seed, migration_batch_size=3
    )
    movers = []
    for i in range(len(schedules)):
        c = system.add_client(RangeFilter(0.0, 1.0), broker=i, mobile=True)
        c.connect(i)
        movers.append(c)
    pub = system.add_client(RangeFilter(2.0, 2.0), broker=k * k - 1)
    pub.connect(k * k - 1)
    system.run(until=2000.0)
    # interleave: round-robin one step from each schedule
    queues = [list(s) for s in schedules]
    while any(queues):
        for mover, q in zip(movers, queues):
            if not q:
                continue
            action, param, dwell = q.pop(0)
            if action == "move":
                if mover.connected:
                    mover.disconnect()
                    system.run(until=system.sim.now + dwell / 3.0)
                mover.connect(param % (k * k))
            elif action == "publish":
                pub.publish(param / 10.0)
            system.run(until=system.sim.now + dwell)
    for mover in movers:
        if not mover.connected:
            mover.connect(mover.last_broker)
    system.sim.run()
    stats = system.metrics.delivery.stats
    assert system.protocol.quiescent()
    assert stats.duplicates == 0
    assert stats.order_violations == 0
    assert stats.missing == 0
