"""Scenario + property tests for the sub-unsub baseline protocol."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.mobility.sub_unsub import SubUnsubProtocol
from repro.pubsub.filters import RangeFilter
from repro.pubsub.system import PubSubSystem


def build(k=3, seed=1, covering=None):
    return PubSubSystem(
        grid_k=k, protocol="sub-unsub", seed=seed, covering_enabled=covering
    )


def pair(system, sub_broker, pub_broker):
    sub = system.add_client(RangeFilter(0.0, 0.5), broker=sub_broker, mobile=True)
    pub = system.add_client(RangeFilter(0.9, 0.9), broker=pub_broker)
    sub.connect(sub_broker)
    pub.connect(pub_broker)
    system.run(until=2000.0)
    return sub, pub


def finish(system):
    system.sim.run()
    assert system.sim.peek() is None
    assert system.protocol.quiescent()


def assert_clean(system):
    stats = system.metrics.delivery.stats
    assert stats.duplicates == 0
    assert stats.order_violations == 0
    assert stats.lost_explicit == 0
    assert stats.missing == 0


def test_basic_silent_move():
    system = build()
    sub, pub = pair(system, 0, 8)
    sub.disconnect()
    system.run(until=4000.0)
    for _ in range(5):
        pub.publish(0.25)
    system.run(until=8000.0)
    sub.connect(4)
    finish(system)
    assert_clean(system)
    assert system.metrics.delivery.stats.delivered == 5


def test_delay_dominated_by_safety_interval():
    system = build(k=5)
    proto = system.protocol
    assert isinstance(proto, SubUnsubProtocol)
    sub, pub = pair(system, 0, 12)
    sub.disconnect()
    system.run(until=4000.0)
    pub.publish(0.2)
    system.run(until=8000.0)
    sub.connect(24)
    finish(system)
    delay = system.metrics.handoffs.mean_delay()
    # nothing is delivered before the merge, which waits two safety
    # intervals (paper: the client "has to wait for the finish of the whole
    # handoff process before it can receive any events")
    assert delay is not None
    assert delay >= 2 * proto.safety_interval_ms


def test_same_broker_reconnect_flushes_queue():
    system = build()
    sub, pub = pair(system, 0, 8)
    sub.disconnect()
    system.run(until=3000.0)
    for _ in range(4):
        pub.publish(0.3)
    system.run(until=6000.0)
    sub.connect(0)
    finish(system)
    assert_clean(system)
    assert system.metrics.handoffs.handoff_count == 0
    assert system.metrics.delivery.stats.delivered == 4


def test_events_during_handoff_window_not_lost_not_duplicated():
    system = build(k=5)
    sub, pub = pair(system, 0, 12)
    sub.disconnect()
    system.run(until=3000.0)
    sub.connect(24)
    # publish throughout the dual-subscription window
    for _ in range(15):
        pub.publish(0.1)
        system.run(until=system.sim.now + 60.0)
    finish(system)
    assert_clean(system)
    assert system.metrics.delivery.stats.delivered == 15


def test_subscription_flood_counted_as_handoff_overhead():
    system = build(k=4)
    sub, pub = pair(system, 0, 5)
    sub.disconnect()
    system.run(until=3000.0)
    sub.connect(15)
    finish(system)
    hops = system.metrics.traffic.wired_hops
    assert hops.get("sub_handoff", 0) > 0
    assert hops.get("mobility_ctrl", 0) > 0


def test_old_subscription_removed_after_handoff():
    system = build(k=3)
    sub, pub = pair(system, 0, 8)
    sub.disconnect()
    system.run(until=3000.0)
    sub.connect(4)
    finish(system)
    # only the new epoch's entry remains, at broker 4
    entries = [
        (b.id, e.key)
        for b in system.brokers.values()
        for e in b.table.clients.values()
        if e.client == sub.id
    ]
    assert len(entries) == 1
    assert entries[0][0] == 4
    system.check_mirror_invariant()


def test_rapid_moves_chain_transfers():
    """Fast movement: each transfer defers behind the previous merge."""
    system = build(k=4)
    sub, pub = pair(system, 0, 5)
    sub.disconnect()
    system.run(until=3000.0)
    for _ in range(20):
        pub.publish(0.2)
    system.run(until=7000.0)
    for target in (15, 2, 13):
        sub.connect(target)
        system.run(until=system.sim.now + 80.0)
        sub.disconnect()
        system.run(until=system.sim.now + 50.0)
    sub.connect(8)
    finish(system)
    assert_clean(system)
    assert system.metrics.delivery.stats.delivered == 20


def test_backlog_reshipped_on_every_rapid_move():
    """The paper's fig5a mechanism: undelivered bulk moves repeatedly."""
    def migration_hops(n_moves):
        system = build(k=4, seed=2)
        sub, pub = pair(system, 0, 5)
        sub.disconnect()
        system.run(until=3000.0)
        for _ in range(30):
            pub.publish(0.2)
        system.run(until=7000.0)
        targets = [15, 2, 13, 4, 11][:n_moves]
        for t in targets:
            sub.connect(t)
            system.run(until=system.sim.now + 60.0)
            sub.disconnect()
            system.run(until=system.sim.now + 40.0)
        sub.connect(8)
        finish(system)
        return system.metrics.traffic.wired_hops.get("event_migration", 0)

    # every extra rapid move re-ships the backlog
    assert migration_hops(4) > migration_hops(1)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 15),
    schedule=st.lists(
        st.tuples(
            st.sampled_from(["move", "publish", "wait"]),
            st.integers(0, 8),
            st.floats(min_value=5.0, max_value=3000.0),
        ),
        min_size=1,
        max_size=10,
    ),
)
def test_property_sub_unsub_reliable(seed, schedule):
    system = PubSubSystem(
        grid_k=3, protocol="sub-unsub", seed=seed, migration_batch_size=3
    )
    sub = system.add_client(RangeFilter(0.0, 1.0), broker=0, mobile=True)
    pub = system.add_client(RangeFilter(2.0, 2.0), broker=8)
    sub.connect(0)
    pub.connect(8)
    system.run(until=2000.0)
    for action, param, dwell in schedule:
        if action == "move":
            if sub.connected:
                sub.disconnect()
                system.run(until=system.sim.now + dwell / 3.0)
            sub.connect(param % 9)
        elif action == "publish":
            pub.publish(param / 10.0)
        system.run(until=system.sim.now + dwell)
    if not sub.connected:
        sub.connect(sub.last_broker)
    system.sim.run()
    stats = system.metrics.delivery.stats
    assert system.protocol.quiescent()
    assert stats.duplicates == 0
    assert stats.order_violations == 0
    assert stats.missing == 0, system.metrics.delivery.per_client_missing()
