"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.pubsub.filters import RangeFilter
from repro.pubsub.system import PubSubSystem


@pytest.fixture
def sim():
    from repro.sim.core import Simulator

    return Simulator()


def make_system(protocol: str = "mhh", k: int = 3, seed: int = 1, **kw):
    """A small system for protocol tests."""
    return PubSubSystem(grid_k=k, protocol=protocol, seed=seed, **kw)


def attach_pair(system: PubSubSystem, sub_broker: int, pub_broker: int,
                lo: float = 0.0, hi: float = 0.5):
    """One mobile subscriber + one static publisher, both connected."""
    sub = system.add_client(RangeFilter(lo, hi), broker=sub_broker, mobile=True)
    pub = system.add_client(RangeFilter(0.0, 0.0), broker=pub_broker)
    sub.connect(sub_broker)
    pub.connect(pub_broker)
    system.run(until=500.0)
    return sub, pub


def drain(system: PubSubSystem, limit_rounds: int = 1000) -> None:
    """Run the sim until the heap is empty."""
    system.sim.run()
    assert system.sim.peek() is None
