"""End-to-end integration: full workload runs for every protocol.

These are miniature versions of the paper's experiment: a complete
population, exponential mobility, Poisson publishing — followed by the
reliability audit. They exercise every protocol path that the figure
sweeps rely on.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.workload.spec import WorkloadSpec


def spec(conn_s, disc_s=45.0, duration_s=450.0):
    return WorkloadSpec(
        clients_per_broker=4,
        mobile_fraction=0.3,
        mean_connected_s=conn_s,
        mean_disconnected_s=disc_s,
        publish_interval_s=40.0,
        duration_s=duration_s,
    )


@pytest.mark.parametrize("protocol", ["mhh", "sub-unsub", "two-phase"])
@pytest.mark.parametrize("conn_s", [5.0, 60.0])
def test_reliable_protocols_under_full_workload(protocol, conn_s):
    row = run_experiment(
        ExperimentConfig(
            protocol=protocol, grid_k=4, seed=6, workload=spec(conn_s)
        )
    )
    assert row.handoffs > 0
    assert row.duplicates == 0
    assert row.order_violations == 0
    assert row.lost == 0
    assert row.missing == 0


@pytest.mark.parametrize("conn_s", [5.0, 60.0])
def test_home_broker_accounts_all_events_under_full_workload(conn_s):
    row = run_experiment(
        ExperimentConfig(
            protocol="home-broker", grid_k=4, seed=6, workload=spec(conn_s)
        )
    )
    assert row.handoffs > 0
    assert row.duplicates == 0
    assert row.missing == 0
    assert row.delivered + row.lost == row.expected_deliveries


def test_home_broker_actually_loses_under_fast_movement():
    row = run_experiment(
        ExperimentConfig(
            protocol="home-broker",
            grid_k=5,
            seed=2,
            workload=spec(conn_s=3.0, disc_s=10.0, duration_s=600.0),
        )
    )
    assert row.lost > 0  # the paper's reliability gap is measurable


def test_mhh_beats_sub_unsub_delay_on_identical_workload():
    rows = {
        p: run_experiment(
            ExperimentConfig(protocol=p, grid_k=5, seed=3, workload=spec(60.0))
        )
        for p in ("mhh", "sub-unsub")
    }
    assert (
        rows["mhh"].mean_handoff_delay_ms
        < rows["sub-unsub"].mean_handoff_delay_ms
    )
    # the median strips the shared workload noise; the gap is the protocol
    assert (
        rows["mhh"].median_handoff_delay_ms
        < rows["sub-unsub"].median_handoff_delay_ms
    )


def test_overhead_accounting_consistent():
    row = run_experiment(
        ExperimentConfig(protocol="mhh", grid_k=4, seed=9, workload=spec(30.0))
    )
    from repro.pubsub.messages import OVERHEAD_CATEGORIES

    manual = sum(
        hops
        for cat, hops in row.overhead_by_category.items()
        if cat in OVERHEAD_CATEGORIES
    )
    assert row.overhead_per_handoff == pytest.approx(manual / row.handoffs)


def test_tree_unicast_system_remains_reliable():
    from repro.pubsub.system import PubSubSystem
    from repro.workload.mobility_model import Workload

    system = PubSubSystem(
        grid_k=4, protocol="mhh", seed=5, unicast_routing="tree"
    )
    workload = Workload(system, spec(20.0, duration_s=300.0))
    system.run(until=300_000.0)
    workload.stop()
    for c in workload.all_clients:
        if not c.connected:
            c.connect(c.last_broker or c.home_broker)
    system.sim.run()
    stats = system.metrics.delivery.stats
    assert stats.missing == 0
    assert stats.duplicates == 0
    assert stats.order_violations == 0
