"""Tests for workload generation and the mobility model."""

import pytest

from repro.errors import ConfigurationError
from repro.pubsub.system import PubSubSystem
from repro.sim.rng import RandomStreams
from repro.workload.generator import SubscriptionGenerator, build_population
from repro.workload.mobility_model import Workload
from repro.workload.spec import WorkloadSpec


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        WorkloadSpec(clients_per_broker=0)
    with pytest.raises(ConfigurationError):
        WorkloadSpec(mobile_fraction=1.5)
    with pytest.raises(ConfigurationError):
        WorkloadSpec(match_fraction=0.9)
    with pytest.raises(ConfigurationError):
        WorkloadSpec(duration_s=-1.0)


def test_spec_ms_conversion():
    spec = WorkloadSpec(duration_s=2.0, warmup_s=0.5)
    assert spec.duration_ms == 2000.0
    assert spec.warmup_ms == 500.0


def test_subscription_mean_width_matches_target():
    gen = SubscriptionGenerator(RandomStreams(1), match_fraction=0.0625)
    widths = [gen.draw(i).width for i in range(4000)]
    mean = sum(widths) / len(widths)
    assert 0.055 < mean < 0.070


def test_subscription_ranges_stay_in_unit_interval():
    gen = SubscriptionGenerator(RandomStreams(2), match_fraction=0.0625)
    for i in range(500):
        f = gen.draw(i)
        assert 0.0 <= f.lo <= f.hi <= 1.0


def test_subscriptions_deterministic_per_seed():
    a = SubscriptionGenerator(RandomStreams(5), 0.0625)
    b = SubscriptionGenerator(RandomStreams(5), 0.0625)
    for i in range(20):
        assert a.draw(i) == b.draw(i)


def test_empirical_match_fraction_near_paper_value():
    gen = SubscriptionGenerator(RandomStreams(3), match_fraction=0.0625)
    filters = [gen.draw(i) for i in range(1000)]
    rng = RandomStreams(4).stream("events")
    total = 0
    trials = 300
    for _ in range(trials):
        x = float(rng.uniform())
        total += sum(1 for f in filters if f.lo <= x <= f.hi)
    fraction = total / (trials * len(filters))
    assert 0.045 < fraction < 0.08


def test_population_counts_and_mobile_fraction():
    system = PubSubSystem(grid_k=4, protocol="mhh", seed=1)
    spec = WorkloadSpec(clients_per_broker=5, mobile_fraction=0.2)
    static, mobile = build_population(system, spec)
    assert len(static) + len(mobile) == 16 * 5
    assert len(mobile) == round(0.2 * 80)
    assert all(c.mobile for c in mobile)
    assert not any(c.mobile for c in static)
    # clients spread evenly over brokers
    per_broker = {}
    for c in static + mobile:
        per_broker[c.home_broker] = per_broker.get(c.home_broker, 0) + 1
    assert set(per_broker.values()) == {5}


def test_population_deterministic_per_seed():
    def mobile_set(seed):
        system = PubSubSystem(grid_k=3, protocol="mhh", seed=seed)
        _static, mobile = build_population(
            system, WorkloadSpec(clients_per_broker=4)
        )
        return [c.id for c in mobile]

    assert mobile_set(7) == mobile_set(7)
    assert mobile_set(7) != mobile_set(8)


def test_workload_connects_everyone_and_publishes():
    system = PubSubSystem(grid_k=3, protocol="mhh", seed=2)
    spec = WorkloadSpec(
        clients_per_broker=3,
        publish_interval_s=5.0,
        mean_connected_s=30.0,
        mean_disconnected_s=30.0,
        duration_s=120.0,
        warmup_s=1.0,
    )
    workload = Workload(system, spec)
    system.run(until=spec.duration_ms)
    workload.stop()
    assert system.metrics.delivery.stats.published > 0
    # every client attached at its home broker at t=0
    assert all(c.ever_connected for c in workload.all_clients)


def test_workload_stop_freezes_behaviour():
    system = PubSubSystem(grid_k=3, protocol="mhh", seed=2)
    spec = WorkloadSpec(
        clients_per_broker=3,
        publish_interval_s=2.0,
        mean_connected_s=10.0,
        mean_disconnected_s=10.0,
        duration_s=60.0,
        warmup_s=0.5,
    )
    workload = Workload(system, spec)
    system.run(until=spec.duration_ms)
    workload.stop()
    published_at_stop = system.metrics.delivery.stats.published
    system.run(until=spec.duration_ms + 120_000.0)
    assert system.metrics.delivery.stats.published == published_at_stop


def test_mobile_clients_actually_move():
    system = PubSubSystem(grid_k=3, protocol="mhh", seed=9)
    spec = WorkloadSpec(
        clients_per_broker=4,
        mobile_fraction=0.5,
        mean_connected_s=5.0,
        mean_disconnected_s=5.0,
        duration_s=300.0,
        warmup_s=0.5,
    )
    workload = Workload(system, spec)
    system.run(until=spec.duration_ms)
    workload.stop()
    assert system.metrics.handoffs.handoff_count > 0
