"""Unit tests for generator-based processes."""

import pytest

from repro.errors import SimulationError
from repro.sim.core import Simulator
from repro.sim.process import spawn


def test_process_runs_segments_at_yielded_delays():
    sim = Simulator()
    log = []

    def worker():
        log.append(("a", sim.now))
        yield 10.0
        log.append(("b", sim.now))
        yield 5.0
        log.append(("c", sim.now))

    spawn(sim, worker())
    sim.run()
    assert log == [("a", 0.0), ("b", 10.0), ("c", 15.0)]


def test_start_delay_offsets_first_segment():
    sim = Simulator()
    log = []

    def worker():
        log.append(sim.now)
        yield 1.0
        log.append(sim.now)

    spawn(sim, worker(), start_delay=7.0)
    sim.run()
    assert log == [7.0, 8.0]


def test_process_completion_marks_not_alive():
    sim = Simulator()

    def worker():
        yield 1.0

    p = spawn(sim, worker())
    assert p.alive
    sim.run()
    assert not p.alive


def test_interrupt_stops_pending_wakeup():
    sim = Simulator()
    log = []

    def worker():
        log.append("start")
        yield 10.0
        log.append("never")

    p = spawn(sim, worker())
    sim.run(until=5.0)
    p.interrupt()
    sim.run()
    assert log == ["start"]
    assert not p.alive


def test_interrupt_is_idempotent():
    sim = Simulator()

    def worker():
        yield 10.0

    p = spawn(sim, worker())
    p.interrupt()
    p.interrupt()
    sim.run()


def test_interrupt_triggers_generator_cleanup():
    sim = Simulator()
    cleaned = []

    def worker():
        try:
            yield 10.0
        finally:
            cleaned.append(True)

    p = spawn(sim, worker())
    sim.run(until=1.0)
    p.interrupt()
    assert cleaned == [True]


def test_non_generator_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        spawn(sim, lambda: None)  # type: ignore[arg-type]


def test_negative_yield_kills_process():
    sim = Simulator()

    def worker():
        yield -1.0

    spawn(sim, worker())
    with pytest.raises(SimulationError):
        sim.run()


def test_two_processes_interleave():
    sim = Simulator()
    log = []

    def worker(name, period):
        while sim.now < 10.0:
            log.append((name, sim.now))
            yield period

    spawn(sim, worker("fast", 3.0))
    spawn(sim, worker("slow", 5.0))
    sim.run(until=11.0)
    assert ("fast", 3.0) in log and ("slow", 5.0) in log
    times_fast = [t for n, t in log if n == "fast"]
    assert times_fast == sorted(times_fast)
