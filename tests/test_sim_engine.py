"""Differential tests: lane-based scheduler vs legacy heap-only engine.

The ``lanes`` engine must be *event-for-event identical* to the ``heap``
engine — same callbacks, same firing order, same clock readings — because
every FIFO-link correctness argument in the protocol layer rests on the
scheduler's deterministic ``(time, seq)`` order. These tests drive both
engines with identical inputs at three levels:

1. raw scheduler: randomized interleavings of ``schedule`` /
   ``schedule_fifo`` / cancellation, including nested scheduling from
   inside callbacks and ``run(until=...)`` windowing;
2. whole-system: randomized MHH / sub-unsub / home-broker / two-phase
   mobility scenarios with full tracing — the trace must be byte-identical;
3. experiment harness: a complete ``run_experiment`` per engine — the
   ResultRow metrics must match exactly (modulo wall-clock time).
"""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.pubsub.filters import RangeFilter
from repro.pubsub.system import PubSubSystem
from repro.sim.core import SIM_ENGINES, Simulator
from repro.workload.spec import WorkloadSpec

# a realistic delay mix: zero-delay deferrals, wired hops, wireless slots,
# multi-hop unicast legs, and irregular timer-style delays
LANE_DELAYS = (0.0, 10.0, 10.0, 20.0, 30.0, 50.0)


# ---------------------------------------------------------------------------
# level 1: raw scheduler interleavings
# ---------------------------------------------------------------------------
def pump_random(engine: str, seed: int, n_ops: int = 600):
    """Drive one engine through a randomized schedule/cancel workload.

    All randomness is drawn in callback-firing order, so two engines
    produce identical logs iff they fire events identically.
    """
    rng = random.Random(seed)
    sim = Simulator(engine=engine)
    log: list[tuple[float, int]] = []
    handles: list = []
    ops = 0

    def spawn_some() -> None:
        nonlocal ops
        for _ in range(rng.randrange(0, 4)):
            if ops >= n_ops:
                return
            ops += 1
            tag = ops
            if rng.random() < 0.6:
                delay = rng.choice(LANE_DELAYS)
                sim.schedule_fifo(delay, fire, tag)
            else:
                delay = rng.choice(LANE_DELAYS + (rng.uniform(0.0, 45.0),))
                h = sim.schedule(delay, fire, tag)
                if rng.random() < 0.3:
                    handles.append(h)

    def fire(tag: int) -> None:
        log.append((sim.now, tag))
        if handles and rng.random() < 0.2:
            handles.pop(rng.randrange(len(handles))).cancel()
        spawn_some()

    while ops < n_ops:
        spawn_some()
        sim.run()
    return log, sim.events_processed


@pytest.mark.parametrize("seed", range(15))
def test_differential_random_interleavings(seed):
    lanes = pump_random("lanes", seed)
    heap = pump_random("heap", seed)
    assert lanes == heap


@pytest.mark.parametrize("seed", range(5))
def test_differential_windowed_run(seed):
    """run(until=...) windows cut both engines at the same instants."""
    logs = {}
    for engine in SIM_ENGINES:
        rng = random.Random(seed)
        sim = Simulator(engine=engine)
        log: list[tuple[float, int]] = []

        def tick(tag, depth):
            log.append((sim.now, tag))
            if depth < 6:
                sim.schedule_fifo(rng.choice(LANE_DELAYS), tick, tag, depth + 1)
                sim.schedule(rng.uniform(0.0, 25.0), tick, -tag, depth + 1)

        for i in range(30):
            tick(i + 1, 0)
        t = 0.0
        while sim.peek() is not None:
            t += rng.uniform(1.0, 40.0)
            sim.run(until=t)
            log.append((sim.now, 0))  # clock checkpoints must agree too
        logs[engine] = log
    assert logs["lanes"] == logs["heap"]


def test_fifo_same_delay_preserves_submission_order():
    sim = Simulator()
    fired = []
    for i in range(100):
        sim.schedule_fifo(10.0, fired.append, i)
    sim.run()
    assert fired == list(range(100))


def test_fifo_interleaves_with_heap_by_time_then_seq():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, fired.append, "heap-a")     # seq 0
    sim.schedule_fifo(10.0, fired.append, "lane-a")  # seq 1
    sim.schedule(5.0, fired.append, "heap-b")      # seq 2, earlier time
    sim.schedule_fifo(10.0, fired.append, "lane-b")  # seq 3
    sim.schedule_fifo(20.0, fired.append, "late")    # seq 4, later time
    sim.run()
    assert fired == ["heap-b", "heap-a", "lane-a", "lane-b", "late"]


def test_fifo_zero_delay_defers_within_instant():
    sim = Simulator()
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule_fifo(0.0, fired.append, "inner")

    sim.schedule_fifo(1.0, outer)
    sim.schedule(1.0, fired.append, "sibling")
    sim.run()
    assert fired == ["outer", "sibling", "inner"]


def test_fifo_negative_delay_rejected():
    for engine in SIM_ENGINES:
        sim = Simulator(engine=engine)
        with pytest.raises(SchedulingError):
            sim.schedule_fifo(-0.1, lambda: None)


def test_invalid_engine_rejected():
    with pytest.raises(ConfigurationError):
        Simulator(engine="quantum")
    with pytest.raises(ConfigurationError):
        PubSubSystem(grid_k=2, sim_engine="quantum")


def test_fifo_run_until_and_pending_and_peek():
    sim = Simulator()
    sim.schedule_fifo(10.0, lambda: None)
    sim.schedule_fifo(30.0, lambda: None)
    sim.schedule(20.0, lambda: None)
    assert sim.pending == 3
    assert sim.peek() == 10.0
    sim.run(until=25.0)
    assert sim.now == 25.0
    assert sim.pending == 1
    assert sim.peek() == 30.0
    sim.run()
    assert sim.pending == 0 and sim.peek() is None


def test_step_merges_lanes_and_heap():
    sim = Simulator()
    fired = []
    sim.schedule_fifo(10.0, fired.append, "lane")
    sim.schedule(5.0, fired.append, "heap")
    assert sim.step() and fired == ["heap"]
    assert sim.step() and fired == ["heap", "lane"]
    assert sim.step() is False


# ---------------------------------------------------------------------------
# level 2: whole-system scenarios, byte-identical traces
# ---------------------------------------------------------------------------
def run_scenario(protocol: str, engine: str, seed: int):
    """A randomized mobility scenario; rng draws happen outside callbacks,
    so both engines see an identical action script."""
    rng = random.Random(seed)
    system = PubSubSystem(
        grid_k=3, protocol=protocol, seed=seed, sim_engine=engine, trace="*"
    )
    n = system.broker_count
    subs = []
    for _ in range(4):
        lo = rng.uniform(0.0, 0.5)
        subs.append(
            system.add_client(
                RangeFilter(lo, lo + rng.uniform(0.1, 0.5)),
                broker=rng.randrange(n),
                mobile=True,
            )
        )
    pubs = [
        system.add_client(RangeFilter(2.0, 2.0), broker=rng.randrange(n))
        for _ in range(2)
    ]
    for c in subs + pubs:
        c.connect(c.home_broker)
    t = 0.0
    for _step in range(50):
        t += rng.uniform(5.0, 400.0)
        system.run(until=t)
        roll = rng.random()
        mover = rng.choice(subs)
        if roll < 0.35:
            if mover.connected:
                mover.disconnect()
            else:
                mover.connect(rng.randrange(n))
        elif roll < 0.45:
            # proclaimed moves are an MHH feature (§4.1); baselines get a
            # silent move instead (same rng draws either way)
            dest = rng.randrange(n)
            if mover.connected:
                if protocol == "mhh":
                    mover.proclaim_and_disconnect(dest)
                else:
                    mover.disconnect()
        else:
            pub = rng.choice(pubs)
            for _ in range(rng.randrange(1, 4)):
                pub.publish(topic=rng.random())
    for c in subs:
        if not c.connected:
            c.connect(c.last_broker if c.last_broker is not None else c.home_broker)
    system.sim.run()
    return system


@pytest.mark.parametrize("protocol", ["mhh", "sub-unsub", "home-broker", "two-phase"])
@pytest.mark.parametrize("seed", [3, 17])
def test_differential_end_to_end_traces(protocol, seed):
    systems = {
        engine: run_scenario(protocol, engine, seed) for engine in SIM_ENGINES
    }
    lanes, heap = systems["lanes"], systems["heap"]
    # byte-identical trace (times, categories, payloads, order)
    assert lanes.tracer.format() == heap.tracer.format()
    assert lanes.tracer.records == heap.tracer.records
    # identical delivery / traffic / handoff metrics and event counts
    for attr in ("delivered", "duplicates", "order_violations", "missing",
                 "expected", "published"):
        assert getattr(lanes.metrics.delivery.stats, attr) == \
            getattr(heap.metrics.delivery.stats, attr), attr
    assert lanes.metrics.traffic.by_category() == heap.metrics.traffic.by_category()
    assert lanes.metrics.handoffs.delays() == heap.metrics.handoffs.delays()
    assert lanes.sim.events_processed == heap.sim.events_processed


# ---------------------------------------------------------------------------
# level 3: full experiment harness, identical ResultRow metrics
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("protocol", ["mhh", "sub-unsub"])
def test_differential_run_experiment_result_rows(protocol):
    rows = {}
    for engine in SIM_ENGINES:
        cfg = ExperimentConfig(
            protocol=protocol,
            grid_k=3,
            seed=7,
            sim_engine=engine,
            workload=WorkloadSpec(
                clients_per_broker=3,
                mobile_fraction=0.5,
                mean_connected_s=40.0,
                mean_disconnected_s=40.0,
                publish_interval_s=30.0,
                duration_s=240.0,
            ),
        )
        rows[engine] = run_experiment(cfg)
    lanes, heap = rows["lanes"], rows["heap"]
    assert lanes.as_dict() == heap.as_dict()
    assert lanes.overhead_by_category == heap.overhead_by_category
    assert lanes.sim_events == heap.sim_events
