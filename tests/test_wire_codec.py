"""Codec round-trip battery: ``decode(encode(msg)) == msg`` for every type.

Two layers of pinning:

1. Hypothesis property tests per message class, over generated field
   values — empty filters, max-range intervals, unicode attribute names,
   full ``SessionTransfer`` windows.
2. An exhaustiveness gate: every concrete class in ``pubsub/messages.py``
   must have a schema, every schema must cover exactly the class's slots,
   and type ids must be unique — so adding a message without codec support
   (or adding a slot without a wire field) fails here, not in production.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pubsub import messages as m
from repro.pubsub.events import Notification
from repro.pubsub.filters import (
    AttributeConstraint,
    ConjunctionFilter,
    Op,
    RangeFilter,
)
from repro.util.ids import QueueRef
from repro.wire import codec
from repro.wire.codec import (
    CODEC_VERSION,
    MESSAGE_SCHEMAS,
    CodecError,
    decode_control,
    decode_message,
    encode_control,
    encode_message,
)

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------
uints = st.integers(min_value=0, max_value=2 ** 40)
small_uints = st.integers(min_value=0, max_value=63)
floats = st.floats(allow_nan=False, allow_infinity=True, width=64)
finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
# includes unicode well outside ASCII (topic names, attr names)
texts = st.text(max_size=12)
attr_names = st.one_of(st.just("topic"), st.just("publisher"),
                       st.text(min_size=1, max_size=12))


def notifications():
    return st.builds(
        Notification,
        event_id=uints,
        publisher=small_uints,
        seq=uints,
        publish_time=finite,
        topic=finite,
        attrs=st.one_of(
            st.none(),
            st.dictionaries(texts, st.one_of(st.integers(), finite, texts),
                            max_size=4),
        ),
    )


def range_filters():
    # includes degenerate (lo == hi, the narrowest valid interval) and
    # max-range intervals, plus unicode attribute names
    ordered = st.tuples(finite, finite).map(sorted)
    return st.one_of(
        st.builds(lambda b, attr: RangeFilter(b[0], b[1], attr=attr),
                  ordered, attr_names),
        st.just(RangeFilter(-1e308, 1e308)),      # max range
        st.just(RangeFilter(0.25, 0.25, attr="温度")),  # unicode attr
    )


def conjunction_filters():
    # value domains per operator (AttributeConstraint validates each combo)
    comparison = st.builds(
        AttributeConstraint,
        attr=attr_names,
        op=st.sampled_from([Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE]),
        value=st.one_of(st.integers(), finite, texts),
    )
    ranges = st.builds(
        lambda attr, b: AttributeConstraint(attr, Op.RANGE, (b[0], b[1])),
        attr_names, st.tuples(finite, finite).map(sorted),
    )
    exists = st.builds(
        AttributeConstraint, attr=attr_names, op=st.just(Op.EXISTS),
        value=st.none(),
    )
    prefix = st.builds(
        AttributeConstraint, attr=attr_names, op=st.just(Op.PREFIX),
        value=texts,
    )
    constraint = st.one_of(comparison, ranges, exists, prefix)
    return st.builds(
        ConjunctionFilter,
        constraints=st.tuples() | st.lists(constraint, max_size=3).map(tuple),
    )


def filters():
    return st.one_of(range_filters(), conjunction_filters())


def qrefs():
    return st.builds(QueueRef, broker=small_uints, qid=uints)


sub_keys = st.one_of(
    small_uints,
    texts,
    st.tuples(texts, small_uints),
    st.tuples(st.just("mhh"), small_uints, uints),
)

categories = st.sampled_from(
    [m.CAT_EVENT, m.CAT_SUB_INITIAL, m.CAT_SUB_HANDOFF, m.CAT_MOBILITY_CTRL,
     m.CAT_MIGRATION, m.CAT_HB_FORWARD, m.CAT_RELIABILITY]
)

MESSAGE_STRATEGIES = {
    m.EventMessage: st.builds(m.EventMessage, event=notifications()),
    m.SubscribeMessage: st.builds(
        m.SubscribeMessage, key=sub_keys, filter=filters(), category=categories
    ),
    m.UnsubscribeMessage: st.builds(
        m.UnsubscribeMessage, key=sub_keys, category=categories
    ),
    m.PublishMessage: st.builds(m.PublishMessage, event=notifications()),
    m.ConnectMessage: st.builds(
        m.ConnectMessage, client=small_uints,
        filter=st.none() | filters(),
        last_broker=st.none() | small_uints, epoch=uints,
    ),
    m.DeliverMessage: st.builds(
        m.DeliverMessage, client=small_uints, event=notifications()
    ),
    m.ReliableDeliver: st.builds(
        m.ReliableDeliver, client=small_uints, event=notifications(),
        origin=small_uints, session=uints, rel_seq=uints,
    ),
    m.AckMessage: st.builds(
        m.AckMessage, client=small_uints, origin=small_uints, session=uints,
        cum_ack=st.integers(min_value=-1, max_value=2 ** 32),
        nacks=st.lists(uints, max_size=6).map(tuple),
    ),
    m.HandoffRequest: st.builds(
        m.HandoffRequest, client=small_uints, new_broker=small_uints,
        epoch=uints,
    ),
    m.SubMigration: st.builds(
        m.SubMigration, client=small_uints, key=sub_keys, filter=filters(),
        dest=small_uints, pqlist=st.lists(qrefs(), max_size=4).map(tuple),
        epoch=uints,
    ),
    m.SubMigrationAck: st.builds(m.SubMigrationAck, client=small_uints),
    m.DeliverTQ: st.builds(
        m.DeliverTQ, client=small_uints, dest=small_uints,
        target=small_uints, append_to=st.none() | qrefs(),
        remaining=st.lists(qrefs(), max_size=4).map(tuple),
    ),
    m.MigrateBatch: st.builds(
        m.MigrateBatch, client=small_uints,
        events=st.lists(notifications(), max_size=5),
        append_to=st.none() | qrefs(),
    ),
    m.FetchQueue: st.builds(
        m.FetchQueue, client=small_uints, ref=qrefs(), dest=small_uints,
        append_to=st.none() | qrefs(),
    ),
    m.QueueStreamed: st.builds(
        m.QueueStreamed, client=small_uints, ref=qrefs()
    ),
    m.StreamDone: st.builds(m.StreamDone, client=small_uints),
    m.StopEventMigration: st.builds(
        m.StopEventMigration, client=small_uints
    ),
    m.TransferRequest: st.builds(
        m.TransferRequest, client=small_uints, epoch=uints,
        new_broker=small_uints,
    ),
    m.TransferBatch: st.builds(
        m.TransferBatch, client=small_uints, epoch=uints,
        events=st.lists(notifications(), max_size=5),
    ),
    m.TransferDone: st.builds(
        m.TransferDone, client=small_uints, epoch=uints,
        delivered_ids=st.frozensets(uints, max_size=8),
    ),
    m.Register: st.builds(
        m.Register, client=small_uints, foreign=small_uints, epoch=uints
    ),
    m.Deregister: st.builds(m.Deregister, client=small_uints, epoch=uints),
    m.ForwardedEvent: st.builds(
        m.ForwardedEvent, client=small_uints, event=notifications()
    ),
    m.ForwardedBatch: st.builds(
        m.ForwardedBatch, client=small_uints,
        events=st.lists(notifications(), max_size=5),
    ),
    # a full window: unacked retransmit events plus settled-id cursor
    m.SessionTransfer: st.builds(
        m.SessionTransfer, client=small_uints, origin=small_uints,
        anchor=small_uints,
        events=st.lists(notifications(), max_size=6).map(tuple),
        acked=st.lists(uints, max_size=8).map(tuple),
    ),
}


def _note_tuple(ev):
    attrs = tuple(sorted(ev.attrs.items())) if ev.attrs else None
    return (ev.event_id, ev.publisher, ev.seq, ev.publish_time, ev.topic, attrs)


def _assert_events_identical(a, b):
    """Notification compares by identity, so check clones field-by-field."""
    if isinstance(a, Notification):
        assert isinstance(b, Notification)
        assert _note_tuple(a) == _note_tuple(b)
        return
    if isinstance(a, (list, tuple)):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            _assert_events_identical(x, y)


# ---------------------------------------------------------------------------
# the round-trip battery
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "cls", sorted(MESSAGE_STRATEGIES, key=lambda c: c.__name__),
    ids=lambda c: c.__name__,
)
def test_round_trip_property(cls):
    @settings(max_examples=40, deadline=None)
    @given(msg=MESSAGE_STRATEGIES[cls])
    def run(msg):
        payload = encode_message(msg)
        assert payload[0] == CODEC_VERSION
        out = decode_message(payload)
        assert type(out) is cls
        assert out == msg
        assert out.category == msg.category
        # events are identity-equal in the kernel; verify clones structurally
        for name, value in msg.wire_fields():
            _assert_events_identical(value, getattr(out, name))

    run()


def test_round_trip_unicode_topic_names_and_interning():
    f = ConjunctionFilter((
        AttributeConstraint("температура", Op.GE, 10),
        AttributeConstraint("температура", Op.LE, 30),
        AttributeConstraint("city🌍", Op.EQ, "zürich"),
    ))
    msg = m.SubscribeMessage(("ключ", 7), f, m.CAT_SUB_HANDOFF)
    payload = encode_message(msg)
    assert decode_message(payload) == msg
    # the repeated attr name must have been interned: cheaper than twice raw
    raw = "температура".encode("utf-8")
    assert payload.count(raw) == 1


def test_session_transfer_full_window_round_trips():
    events = tuple(
        Notification(i, publisher=2, seq=i, publish_time=float(i),
                     topic=0.5, attrs={"k": i})
        for i in range(10)
    )
    msg = m.SessionTransfer(3, origin=1, anchor=4, events=events,
                            acked=tuple(range(100, 120)))
    out = decode_message(encode_message(msg))
    assert out == msg
    _assert_events_identical(events, out.events)


def test_empty_and_max_range_filters_round_trip():
    # "empty" = an empty conjunction (RangeFilter validates lo <= hi)
    for f in (RangeFilter(0.5, 0.5), RangeFilter(-1e308, 1e308),
              ConjunctionFilter(()), RangeFilter(0.0, math.inf)):
        msg = m.SubscribeMessage("k", f)
        assert decode_message(encode_message(msg)).filter == f


# ---------------------------------------------------------------------------
# exhaustiveness: the registry must cover pubsub/messages.py exactly
# ---------------------------------------------------------------------------
def _concrete_message_classes():
    found = []
    for name in dir(m):
        obj = getattr(m, name)
        if (isinstance(obj, type) and issubclass(obj, m.Message)
                and obj is not m.Message):
            found.append(obj)
    return found


def test_every_message_class_has_a_codec_registration():
    missing = [c.__name__ for c in _concrete_message_classes()
               if c not in MESSAGE_SCHEMAS]
    assert missing == [], f"message classes without a wire schema: {missing}"


def test_every_message_class_has_a_round_trip_strategy():
    missing = [c.__name__ for c in _concrete_message_classes()
               if c not in MESSAGE_STRATEGIES]
    assert missing == [], f"message classes without a test strategy: {missing}"


def test_schemas_cover_exactly_the_declared_slots():
    for cls, (_tid, fields) in MESSAGE_SCHEMAS.items():
        slots = [s for k in reversed(cls.__mro__)
                 for s in getattr(k, "__slots__", ())]
        assert [name for name, _ in fields] == slots, (
            f"{cls.__name__}: schema fields {[n for n, _ in fields]} "
            f"!= slots {slots}"
        )


def test_type_ids_are_unique_and_stable():
    ids = sorted(tid for tid, _ in MESSAGE_SCHEMAS.values())
    assert len(ids) == len(set(ids))
    # pinned: renumbering ids is a wire-protocol break and needs a version bump
    assert ids == list(range(1, len(ids) + 1))


def test_unregistered_message_is_a_codec_error():
    class Rogue(m.Message):
        __slots__ = ("x",)

        def __init__(self, x):
            self.x = x

    with pytest.raises(CodecError):
        encode_message(Rogue(1))


# ---------------------------------------------------------------------------
# decoder hostility
# ---------------------------------------------------------------------------
def test_decoder_rejects_unknown_version():
    payload = bytearray(encode_message(m.StreamDone(1)))
    payload[0] = 99
    with pytest.raises(CodecError):
        decode_message(bytes(payload))


def test_decoder_rejects_unknown_type_id():
    with pytest.raises(CodecError):
        decode_message(bytes([CODEC_VERSION, 0x7F]))


def test_decoder_rejects_truncation_at_every_offset():
    payload = encode_message(
        m.SubMigration(1, ("k", 2), RangeFilter(0.1, 0.9), 3,
                       (QueueRef(1, 2), QueueRef(3, 4)), 5)
    )
    for cut in range(len(payload)):
        with pytest.raises(CodecError):
            decode_message(payload[:cut])


def test_decoder_rejects_trailing_garbage():
    with pytest.raises(CodecError):
        decode_message(encode_message(m.StreamDone(1)) + b"\x00")


@settings(max_examples=60, deadline=None)
@given(junk=st.binary(min_size=1, max_size=64))
def test_decoder_never_raises_foreign_exceptions(junk):
    try:
        decode_message(bytes([CODEC_VERSION]) + junk)
    except CodecError:
        pass


# ---------------------------------------------------------------------------
# control-value channel (node protocol frames)
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    value=st.recursive(
        st.one_of(st.none(), st.booleans(), st.integers(), finite, texts,
                  st.binary(max_size=8), qrefs()),
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.lists(children, max_size=4).map(tuple),
            st.dictionaries(texts, children, max_size=3),
        ),
        max_leaves=12,
    )
)
def test_control_values_round_trip(value):
    assert decode_control(encode_control(value)) == value


def test_control_round_trips_config_like_payload():
    blob = ("hello", 1, {"protocol": "mhh", "grid_k": 3, "seed": 7,
                         "trace": {0: (1, 2), 5: (0,)}},
            (0, 1, 2), frozenset({4, 5}))
    assert decode_control(encode_control(blob)) == blob


def test_nested_message_inside_control_frame():
    msg = m.DeliverMessage(2, Notification(9, 1, 0, 5.0, 0.25))
    kind, out = decode_control(encode_control(("effect", msg)))
    assert kind == "effect" and out == msg


def test_module_exports_are_consistent():
    for name in codec.__all__:
        assert hasattr(codec, name)
