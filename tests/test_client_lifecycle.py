"""Client life-cycle and error-handling tests."""

import pytest

from repro.errors import ClientStateError, ConfigurationError
from repro.pubsub.filters import RangeFilter
from repro.pubsub.system import PubSubSystem


def build():
    return PubSubSystem(grid_k=3, protocol="mhh", seed=1)


def test_double_connect_rejected():
    system = build()
    c = system.add_client(RangeFilter(0.0, 1.0), broker=0)
    c.connect(0)
    with pytest.raises(ClientStateError):
        c.connect(1)


def test_disconnect_while_disconnected_rejected():
    system = build()
    c = system.add_client(RangeFilter(0.0, 1.0), broker=0)
    with pytest.raises(ClientStateError):
        c.disconnect()


def test_publish_while_disconnected_rejected():
    system = build()
    c = system.add_client(RangeFilter(0.0, 1.0), broker=0)
    with pytest.raises(ClientStateError):
        c.publish(0.5)


def test_add_client_unknown_broker_rejected():
    system = build()
    with pytest.raises(ConfigurationError):
        system.add_client(RangeFilter(0.0, 1.0), broker=99)


def test_last_broker_tracks_disconnect_location():
    system = build()
    c = system.add_client(RangeFilter(0.0, 1.0), broker=0, mobile=True)
    c.connect(0)
    system.run(until=1000.0)
    assert c.last_broker is None  # still connected at first broker
    c.disconnect()
    assert c.last_broker == 0
    system.run(until=2000.0)
    c.connect(4)
    system.run(until=4000.0)
    c.disconnect()
    assert c.last_broker == 4


def test_proclaimed_move_sets_last_broker_to_destination():
    system = build()
    c = system.add_client(RangeFilter(0.0, 1.0), broker=0, mobile=True)
    c.connect(0)
    system.run(until=1000.0)
    c.proclaim_and_disconnect(8)
    assert c.last_broker == 8


def test_publish_sequence_numbers_increase():
    system = build()
    c = system.add_client(RangeFilter(0.0, 0.0), broker=0)
    c.connect(0)
    system.run(until=1000.0)
    events = [c.publish(0.5) for _ in range(5)]
    assert [e.seq for e in events] == [0, 1, 2, 3, 4]
    assert len({e.event_id for e in events}) == 5


def test_event_ids_unique_across_clients():
    system = build()
    a = system.add_client(RangeFilter(0.0, 0.0), broker=0)
    b = system.add_client(RangeFilter(0.0, 0.0), broker=1)
    a.connect(0)
    b.connect(1)
    system.run(until=1000.0)
    ids = {a.publish(0.5).event_id, b.publish(0.5).event_id,
           a.publish(0.5).event_id}
    assert len(ids) == 3


def test_connect_disconnect_within_uplink_window_is_safe():
    """A client that attaches and leaves within the 20 ms uplink latency."""
    system = build()
    pub = system.add_client(RangeFilter(0.9, 0.9), broker=8)
    pub.connect(8)
    system.run(until=1000.0)
    c = system.add_client(RangeFilter(0.0, 1.0), broker=0, mobile=True)
    c.connect(0)
    system.run(until=system.sim.now + 5.0)  # connect message still in flight
    c.disconnect()
    system.run(until=3000.0)
    pub.publish(0.5)
    system.run(until=6000.0)
    c.connect(0)
    system.sim.run()
    stats = system.metrics.delivery.stats
    assert stats.missing == 0
    assert stats.delivered == stats.expected
