"""Microbenchmark: raw scheduler throughput.

The scheduler is the innermost loop of every experiment; this bench tracks
its event throughput (schedule + fire) and the cost of the process layer on
top, so regressions in the hot path are visible independently of protocol
logic.
"""

from __future__ import annotations

from repro.sim.core import Simulator
from repro.sim.process import spawn

N_EVENTS = 200_000


def pump_callbacks(n: int) -> int:
    sim = Simulator()
    fired = 0

    def tick():
        nonlocal fired
        fired += 1
        if fired < n:
            sim.schedule(1.0, tick)

    # seed a handful of concurrent chains like a real broker network
    for i in range(100):
        sim.schedule(float(i % 7), tick)
    sim.run()
    return fired


def pump_processes(n: int) -> int:
    sim = Simulator()
    done = 0

    def worker(steps):
        nonlocal done
        for _ in range(steps):
            yield 1.0
        done += 1

    for _ in range(50):
        spawn(sim, worker(n // 50))
    sim.run()
    return done


def test_scheduler_throughput(benchmark):
    fired = benchmark(pump_callbacks, N_EVENTS)
    assert fired >= N_EVENTS
    benchmark.extra_info["events"] = fired


def test_process_layer_throughput(benchmark):
    done = benchmark(pump_processes, 100_000)
    assert done == 50
