"""Microbenchmark: raw scheduler throughput, lanes engine vs heap engine.

The scheduler is the innermost loop of every experiment; this bench tracks
its event throughput (schedule + fire) and the cost of the process layer on
top, so regressions in the hot path are visible independently of protocol
logic.

Two workload shapes:

* ``pump_callbacks`` / ``pump_processes`` — the original small-population
  chains (100 concurrent timers / 50 processes): the regime where protocol
  logic, not the scheduler, dominates. Tracked for continuity.
* ``pump_links`` — a steady-state broker network at scale: a large
  in-flight message population (tens of thousands of events pending at
  once, like millions of users publishing through the overlay), every
  message on one of a handful of constant link delays. This is the regime
  the lane scheduler exists for: the heap pays O(log n) sift cost per
  event against the lanes' O(1) deque ops + O(log #lanes) merge, so the
  gap widens with the in-flight population.

``test_lanes_beat_heap_at_scale`` is the acceptance gate: the lanes engine
must clear 2x heap throughput on the large-population link workload (the
differential ordering tests live in ``tests/test_sim_engine.py``).
"""

from __future__ import annotations

import time

from repro.sim.core import Simulator
from repro.sim.process import spawn

N_EVENTS = 200_000

#: the delays real link traffic carries: wired hop, wireless slot,
#: 2-4 hop unicast legs (see repro.network.links)
LINK_DELAYS = (10.0, 10.0, 20.0, 20.0, 30.0, 40.0)

#: steady-state in-flight population for the at-scale comparison (the win
#: grows with the population — ~2.5x at 50k, ~2.7x at 100k, ~2.9x at 200k —
#: so this sits high enough to give the >=2x CI gate real headroom)
N_IN_FLIGHT = 100_000


def pump_callbacks(n: int) -> int:
    sim = Simulator()
    fired = 0

    def tick():
        nonlocal fired
        fired += 1
        if fired < n:
            sim.schedule(1.0, tick)

    # seed a handful of concurrent chains like a real broker network
    for i in range(100):
        sim.schedule(float(i % 7), tick)
    sim.run()
    return fired


def pump_processes(n: int) -> int:
    sim = Simulator()
    done = 0

    def worker(steps):
        nonlocal done
        for _ in range(steps):
            yield 1.0
        done += 1

    for _ in range(50):
        spawn(sim, worker(n // 50))
    sim.run()
    return done


def _nop() -> None:
    return None


def pump_links(engine: str, n_pending: int, rounds: int) -> int:
    """Steady-state link traffic: ``n_pending`` messages in flight at once,
    each round schedules a fresh wave onto the constant link delays and
    drains it. Callbacks are no-ops so the measurement isolates scheduler
    cost (schedule + merge + fire)."""
    sim = Simulator(engine=engine)
    fifo = sim.schedule_fifo
    n_delays = len(LINK_DELAYS)
    total = 0
    for _ in range(rounds):
        for i in range(n_pending):
            fifo(LINK_DELAYS[i % n_delays], _nop)
        sim.run()
        total += n_pending
    return total


def _best_of(n: int, fn, *args) -> float:
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def measure_link_throughput(
    n_pending: int = N_IN_FLIGHT, rounds: int = 4, repeats: int = 3
) -> dict[str, float]:
    """Best-of-``repeats`` link-traffic timing for both engines.

    The single source of truth for the at-scale measurement protocol: both
    the CI acceptance gate below and ``benchmarks/perf_trajectory.py``'s
    BENCH_core.json artifact call this, so they can never drift apart.
    """
    pump_links("lanes", 1000, 1)  # warm up allocator/caches outside timing
    pump_links("heap", 1000, 1)
    t_lanes = _best_of(repeats, pump_links, "lanes", n_pending, rounds)
    t_heap = _best_of(repeats, pump_links, "heap", n_pending, rounds)
    n_events = rounds * n_pending
    return {
        "events": float(n_events),
        "in_flight": float(n_pending),
        "lanes_s": t_lanes,
        "heap_s": t_heap,
        "lanes_events_per_s": n_events / t_lanes,
        "heap_events_per_s": n_events / t_heap,
        "speedup": t_heap / t_lanes,
    }


# ---------------------------------------------------------------------------
# tracked benchmarks
# ---------------------------------------------------------------------------
def test_scheduler_throughput(benchmark):
    fired = benchmark(pump_callbacks, N_EVENTS)
    assert fired >= N_EVENTS
    benchmark.extra_info["events"] = fired


def test_process_layer_throughput(benchmark):
    done = benchmark(pump_processes, 100_000)
    assert done == 50


def test_link_traffic_throughput_lanes(benchmark):
    total = benchmark(pump_links, "lanes", N_IN_FLIGHT, 2)
    assert total == 2 * N_IN_FLIGHT
    benchmark.extra_info["events"] = total
    benchmark.extra_info["in_flight"] = N_IN_FLIGHT


def test_link_traffic_throughput_heap(benchmark):
    total = benchmark(pump_links, "heap", N_IN_FLIGHT, 2)
    assert total == 2 * N_IN_FLIGHT
    benchmark.extra_info["events"] = total
    benchmark.extra_info["in_flight"] = N_IN_FLIGHT


# ---------------------------------------------------------------------------
# acceptance comparison
# ---------------------------------------------------------------------------
def test_lanes_beat_heap_at_scale():
    """Acceptance: >=2x scheduler throughput on at-scale link traffic."""
    m = measure_link_throughput()
    assert m["speedup"] >= 2.0, (
        f"lanes {m['lanes_events_per_s'] / 1e6:.2f}M ev/s vs heap "
        f"{m['heap_events_per_s'] / 1e6:.2f}M ev/s — only "
        f"{m['speedup']:.2f}x at {N_IN_FLIGHT} in flight"
    )
