"""Diff a fresh perf-trajectory snapshot against the checked-in baseline.

``BENCH_core.json`` at the repo root is the committed perf-trajectory
baseline (regenerate with ``benchmarks/perf_trajectory.py`` when a PR
intentionally moves the numbers). CI produces a fresh snapshot on every
run and this script compares the two, so the trajectory is *tracked*, not
merely uploaded:

* **schema / scale / key set** — a fresh snapshot must measure everything
  the baseline measures; a silently dropped metric fails the diff.
* **speedup ratios** (``*_speedup``) — machine-independent-ish signals
  (lanes/heap, counting/scan, incremental/rebuild, indexed/scan). A fresh
  ratio below ``tolerance x baseline`` fails: the optimisation a past PR
  paid for has regressed. Keys listed in ``_SPEEDUP_FLOORS`` additionally
  hold an *absolute* line (e.g. batched matching must keep clearing 2x
  over per-event counting regardless of the baseline machine).
* **overhead ratios** (``*_overhead``) — opt-in layers (reliability over
  baseline, durability over reliable) are gated at an *absolute* cap
  (default 1.25x): the layer must stay cheap regardless of what the
  baseline machine looked like.
* **absolute throughputs/wall times** — reported with deltas for the PR
  log but not gated by default (CI machines vary too much); ``--strict``
  gates ``*_per_s`` metrics at the same tolerance.

Usage::

    PYTHONPATH=src python benchmarks/perf_trajectory.py --out BENCH_fresh.json
    python benchmarks/compare_trajectory.py \
        --baseline BENCH_core.json --fresh BENCH_fresh.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: counters/parameters carried for context, never gated or delta-reported
_CONTEXT_KEYS = ("_n_filters", "_in_flight", "_runs", "_sim_events")

#: per-key absolute ceilings for *_overhead ratios; keys not pinned here
#: use the --overhead-cap default. The ACK/retransmit layer does real
#: protocol work under 10% injected loss (acks, timer wheel, retransmits),
#: so its ceiling only catches blowups; the WAL rides inside that machinery
#: and must stay cheap.
_OVERHEAD_CAPS = {"reliability_overhead": 1.6}

#: per-key absolute floors for *_speedup ratios a PR contractually
#: promised — gated like the overhead caps against an absolute line, not
#: the baseline machine, on top of the relative tolerance. The batched
#: matching kernel must keep clearing 2x over per-event counting at the
#: 2k-filter gate point (its measurement is GC-parked and interleaved, so
#: the ratio is stable across machines).
_SPEEDUP_FLOORS = {"matching_batch_speedup": 2.0}


def _is_context(key: str) -> bool:
    return any(key.endswith(suffix) for suffix in _CONTEXT_KEYS)


def compare(baseline: dict, fresh: dict, tolerance: float, strict: bool,
            overhead_cap: float = 1.25):
    """Return (report_lines, failures) for two snapshot dicts."""
    lines: list[str] = []
    failures: list[str] = []

    if baseline.get("schema") != fresh.get("schema"):
        failures.append(
            f"schema mismatch: baseline {baseline.get('schema')} "
            f"vs fresh {fresh.get('schema')}"
        )
    if baseline.get("scale") != fresh.get("scale"):
        failures.append(
            f"scale mismatch: baseline {baseline.get('scale')!r} "
            f"vs fresh {fresh.get('scale')!r} (set MHH_BENCH_SCALE)"
        )

    base_m = baseline.get("metrics", {})
    fresh_m = fresh.get("metrics", {})
    missing = sorted(set(base_m) - set(fresh_m))
    if missing:
        failures.append(f"metrics dropped from the trajectory: {missing}")

    for key in sorted(set(base_m) & set(fresh_m)):
        if _is_context(key):
            continue
        b, f = base_m[key], fresh_m[key]
        ratio = f / b if b else float("inf")
        gated = key.endswith(("_speedup", "_overhead")) or (
            strict and key.endswith("_per_s")
        )
        # wall times regress by going *up*; everything else by going down
        if key.endswith("_wall_s"):
            ok = (not gated) or ratio <= 1.0 / tolerance
            direction = f"{ratio:5.2f}x slower" if ratio > 1 else f"{1 / ratio:5.2f}x faster"
        elif key.endswith("_overhead"):
            # opt-in layer cost: gated against an absolute ceiling, not the
            # baseline machine — the layer itself must stay cheap
            cap = _OVERHEAD_CAPS.get(key, overhead_cap)
            ok = (not gated) or f <= cap
            direction = f"cap {cap:.2f}x"
        else:
            ok = (not gated) or ratio >= tolerance
            floor = _SPEEDUP_FLOORS.get(key)
            if gated and floor is not None and f < floor:
                ok = False
            direction = f"{ratio:5.2f}x"
            if floor is not None:
                direction += f", floor {floor:.1f}x"
        marker = " " if ok else "!"
        gate = "gated" if gated else "info "
        lines.append(
            f"{marker} [{gate}] {key:45s} {b:14.2f} -> {f:14.2f}  ({direction})"
        )
        if not ok:
            if key.endswith("_overhead"):
                failures.append(
                    f"{key} exceeds the absolute cap "
                    f"{_OVERHEAD_CAPS.get(key, overhead_cap)}: "
                    f"fresh {f:.2f} (baseline {b:.2f})"
                )
            elif key in _SPEEDUP_FLOORS and f < _SPEEDUP_FLOORS[key]:
                failures.append(
                    f"{key} fell below the absolute floor "
                    f"{_SPEEDUP_FLOORS[key]}: fresh {f:.2f} "
                    f"(baseline {b:.2f})"
                )
            else:
                failures.append(
                    f"{key} regressed beyond tolerance {tolerance}: "
                    f"baseline {b:.2f} -> fresh {f:.2f}"
                )
    return lines, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff a fresh BENCH snapshot against the repo baseline."
    )
    parser.add_argument("--baseline", default="BENCH_core.json",
                        help="checked-in baseline (default BENCH_core.json)")
    parser.add_argument("--fresh", required=True,
                        help="freshly generated snapshot to compare")
    parser.add_argument("--tolerance", type=float, default=0.35,
                        help="minimum fresh/baseline ratio for gated "
                             "metrics (default 0.35 — generous, CI "
                             "machines vary; the per-bench asserts hold "
                             "the tight lines)")
    parser.add_argument("--strict", action="store_true",
                        help="also gate absolute *_per_s throughputs")
    parser.add_argument("--overhead-cap", type=float, default=1.25,
                        help="absolute ceiling for *_overhead ratios "
                             "(default 1.25 — an opt-in layer may cost at "
                             "most a quarter of the run it wraps)")
    args = parser.parse_args(argv)

    baseline = json.loads(Path(args.baseline).read_text())
    fresh = json.loads(Path(args.fresh).read_text())
    lines, failures = compare(baseline, fresh, args.tolerance, args.strict,
                              args.overhead_cap)

    print(f"perf trajectory diff: {args.baseline} (commit "
          f"{baseline.get('commit', '?')}) vs {args.fresh} "
          f"(commit {fresh.get('commit', '?')})")
    for line in lines:
        print(line)
    if failures:
        print("\ntrajectory regressions:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\ntrajectory OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
