"""Figure 6(a): message overhead per handoff vs number of base stations.

Paper shape: overhead grows with network size for every protocol; the
home-broker protocol grows fastest (triangle routing worsens with
distance) and the margins widen as the network scales; MHH stays lowest.
"""

from __future__ import annotations

from benchmarks.conftest import run_once, series_by_protocol
from repro.experiments.config import bench_scale
from repro.experiments.figures import fig6a, run_fig6
from repro.experiments.report import format_series

# grid sides per scale: the paper sweeps k in {5,7,10,12,14}
_SIZES = {"smoke": (3, 4, 5), "small": (5, 7, 10), "paper": (5, 7, 10, 12, 14)}


def test_fig6a_overhead_vs_network_size(benchmark):
    scale = bench_scale()
    rows = run_once(
        benchmark, run_fig6, scale=scale, grid_sizes=_SIZES[scale], seed=1
    )
    series = fig6a(rows)
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["series"] = {
        p: [(x, y) for x, y in pts] for p, pts in series.items()
    }
    print()
    print(format_series(series, "base_stations", "msg overhead / handoff",
                        title=f"Figure 6(a) [{scale}]"))

    mhh = series_by_protocol(series, "mhh")
    hb = series_by_protocol(series, "home-broker")
    su = series_by_protocol(series, "sub-unsub")
    xs = sorted(mhh)
    lo, hi = xs[0], xs[-1]
    # everyone's overhead grows with the network
    assert mhh[hi] > mhh[lo]
    assert su[hi] > su[lo]
    assert hb[hi] > hb[lo]
    # MHH is always cheaper than sub-unsub (no floods)
    assert mhh[hi] < su[hi]
    if scale != "smoke":
        # HB's margin over MHH widens with size (triangle routing worsens
        # with distance)
        assert (hb[hi] - mhh[hi]) > (hb[lo] - mhh[lo])
    if scale == "paper":
        # At the paper's population density (10 clients/broker) the
        # per-client event rate makes triangle routing dominate at the
        # largest size: HB worst, sub-unsub in between. Smaller presets
        # halve the population and HB's live forwarding with it.
        assert hb[hi] > su[hi] > mhh[hi]
