"""Emit a machine-readable perf-trajectory snapshot (``BENCH_core.json``).

CI runs this after the benchmark smoke job and uploads the JSON as an
artifact, so every PR leaves a wall-time data point behind and perf
regressions in the three core hot paths are visible as a trajectory across
PRs rather than anecdotes:

* **scheduler** — lane vs heap engine throughput on at-scale link traffic
  (:mod:`benchmarks.bench_sim_engine`);
* **matching** — counting vs scan engine throughput at 2k filters/broker
  (:mod:`benchmarks.bench_matching_engine`), plus batched vs per-event
  counting at the same gate point (:mod:`benchmarks.bench_matching_batch`);
* **control plane** — routing-state churn: incremental vs rebuild interval
  index at 2k filters, indexed vs scan covering withdrawals, and the
  churn-heaviest fig5a point (conn=1s)
  (:mod:`benchmarks.bench_control_plane`);
* **reliability** — wall-time overhead of the end-to-end ACK/retransmit
  layer on a lossy churn run, off vs on at the same seed
  (:mod:`repro.pubsub.reliability`);
* **durability** — wall-time overhead of the write-ahead log + persistent
  sessions over the reliable baseline at the same seed
  (:mod:`repro.pubsub.wal`);
* **fig5a** — the full Figure 5 sweep wall time at the chosen scale (the
  end-to-end number everything else serves).

Usage::

    PYTHONPATH=src python benchmarks/perf_trajectory.py --out BENCH_core.json
    MHH_BENCH_SCALE=small PYTHONPATH=src python -m benchmarks.perf_trajectory

Timings are best-of-N wall clock (N=3 for the microbenches, 1 for the
sweep — sweeps are deterministic per seed). Absolute numbers vary across
machines; ratios (lanes/heap, counting/scan) are the stable signal.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

# support both `python benchmarks/perf_trajectory.py` and -m invocation
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.bench_control_plane import (  # noqa: E402
    measure_interval_churn,
    measure_withdraw_covering,
)
from benchmarks.bench_matching_batch import measure_batch_matching  # noqa: E402
from benchmarks.bench_matching_engine import (  # noqa: E402
    N_FILTERS,
    build_table,
    make_events,
    run_matches,
)
from benchmarks.bench_sim_engine import measure_link_throughput  # noqa: E402
from dataclasses import replace  # noqa: E402
from repro.experiments.config import ExperimentConfig, bench_scale  # noqa: E402
from repro.experiments.figures import run_fig5  # noqa: E402
from repro.experiments.runner import run_experiment  # noqa: E402
from repro.network.faults import FaultProfile  # noqa: E402
from repro.workload.spec import WorkloadSpec  # noqa: E402

SCHEMA_VERSION = 1


def _best_of(n: int, fn, *args) -> float:
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def _git_commit() -> str:
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent.parent,
            text=True,
            stderr=subprocess.DEVNULL,
        ).strip()
    except Exception:  # pragma: no cover - git absent in some envs
        return "unknown"


def collect(scale: str) -> dict:
    """Run the three core measurements and return the snapshot dict."""
    metrics: dict[str, float] = {}

    # scheduler: at-scale link traffic, both engines (same measurement
    # protocol as the CI acceptance gate — one source of truth)
    link = measure_link_throughput()
    metrics["scheduler_in_flight"] = link["in_flight"]
    metrics["scheduler_lanes_events_per_s"] = link["lanes_events_per_s"]
    metrics["scheduler_heap_events_per_s"] = link["heap_events_per_s"]
    metrics["scheduler_lanes_speedup"] = link["speedup"]

    # matching: range workload at 2k filters/broker, both engines
    events = make_events("range", 500)
    counting = build_table("counting", "range")
    scan = build_table("scan", "range")
    run_matches(counting, events[:10])  # build lazy indexes outside timing
    run_matches(scan, events[:10])
    t_counting = _best_of(3, run_matches, counting, events)
    t_scan = _best_of(3, run_matches, scan, events)
    metrics["matching_counting_events_per_s"] = len(events) / t_counting
    metrics["matching_scan_events_per_s"] = len(events) / t_scan
    metrics["matching_counting_speedup"] = t_scan / t_counting
    metrics["matching_n_filters"] = float(N_FILTERS)

    # batched matching: the same table/workload resolved through
    # FilterTable.match_batch in one pass (the broker's same-instant
    # lane-drain batch at its largest). Paired measurement protocol from
    # bench_matching_batch — one source of truth with its acceptance test;
    # the speedup is gated at an absolute >=2x floor by
    # compare_trajectory.py, the contract this optimisation pays rent on.
    batch = measure_batch_matching()
    metrics["matching_batch_events_per_s"] = batch["batch_events_per_s"]
    metrics["matching_batch_speedup"] = batch["speedup"]

    # control plane: routing-state churn (same measurement protocols as the
    # bench_control_plane CI gates — one source of truth)
    churn = measure_interval_churn()
    metrics["control_plane_incremental_ops_per_s"] = churn["incremental_ops_per_s"]
    metrics["control_plane_rebuild_ops_per_s"] = churn["rebuild_ops_per_s"]
    metrics["control_plane_churn_speedup"] = churn["speedup"]
    metrics["control_plane_n_filters"] = churn["n_filters"]
    withdraw = measure_withdraw_covering()
    metrics["control_plane_withdraw_indexed_ops_per_s"] = withdraw["indexed_ops_per_s"]
    metrics["control_plane_withdraw_legacy_ops_per_s"] = withdraw["legacy_ops_per_s"]
    metrics["control_plane_withdraw_speedup"] = withdraw["speedup"]

    # reliability: wall-time cost of the ACK/retransmit layer on one lossy
    # churn run, same seed off vs on. Default-off must stay free (it
    # constructs nothing), so the overhead ratio is the price of turning
    # the layer on — timer traffic, acks, retransmits — not of having it.
    # 600 simulated seconds: the overhead ratios are gated at an absolute
    # cap, and sub-0.2s wall times put the scheduler-noise floor inside
    # the gate's tolerance — a longer run amortizes it away
    rel_cfg = ExperimentConfig(
        protocol="mhh", grid_k=3, seed=1,
        workload=WorkloadSpec(
            clients_per_broker=4, mobile_fraction=0.5,
            mean_connected_s=10.0, mean_disconnected_s=5.0,
            publish_interval_s=10.0, duration_s=600.0,
        ),
        faults=FaultProfile(deliver_loss=0.1),
    )
    # the overhead ratios are gated at an absolute cap, so the noise floor
    # matters more than for the info-only wall times: interleave the three
    # variants round-robin (sequential blocks let CPU warm-up drift land
    # entirely on one variant) and take best-of-7 rounds each.
    # durability = the WAL + persistent sessions on top of the same
    # reliable run; its ratio vs the reliable baseline is the price of
    # append-before-send logging and checkpoint/compaction (the sim
    # driver's in-memory store — the fsync cost of the live file store is
    # I/O-bound and belongs to a soak, not a trajectory snapshot).
    variants = [
        rel_cfg,
        replace(rel_cfg, reliable=True),
        replace(rel_cfg, reliable=True, durable=True),
    ]
    run_experiment(variants[-1])  # warm caches outside timing
    best = [float("inf")] * len(variants)
    for _ in range(7):
        for i, c in enumerate(variants):
            t0 = time.perf_counter()
            run_experiment(c)
            best[i] = min(best[i], time.perf_counter() - t0)
    t_off, t_on, t_dur = best
    metrics["reliability_off_wall_s"] = t_off
    metrics["reliability_on_wall_s"] = t_on
    metrics["reliability_overhead"] = t_on / t_off
    metrics["durability_on_wall_s"] = t_dur
    metrics["durability_overhead"] = t_dur / t_on

    # end to end: the Figure 5 sweep at the requested scale
    t0 = time.perf_counter()
    rows = run_fig5(scale=scale, seed=1)
    metrics["fig5a_wall_s"] = time.perf_counter() - t0
    metrics["fig5a_runs"] = float(len(rows))
    metrics["fig5a_sim_events"] = float(sum(r.sim_events for r in rows))
    metrics["fig5a_sim_events_per_s"] = (
        metrics["fig5a_sim_events"] / metrics["fig5a_wall_s"]
    )
    # the churn-heaviest point (conn=1s), carved out of the same sweep's
    # per-run timings — no second simulation of the most expensive point
    conn1 = [r for r in rows if r.params.get("conn_s") == 1.0]
    metrics["control_plane_fig5a_conn1_wall_s"] = sum(
        r.wall_seconds for r in conn1
    )
    metrics["control_plane_fig5a_conn1_sim_events"] = float(
        sum(r.sim_events for r in conn1)
    )

    return {
        "schema": SCHEMA_VERSION,
        "commit": _git_commit(),
        "scale": scale,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "metrics": metrics,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Collect the perf-trajectory snapshot (BENCH_core.json)."
    )
    parser.add_argument("--out", default="BENCH_core.json",
                        help="output path (default: BENCH_core.json)")
    args = parser.parse_args(argv)

    scale = bench_scale()
    snapshot = collect(scale)
    Path(args.out).write_text(json.dumps(snapshot, indent=2, sort_keys=True))

    m = snapshot["metrics"]
    print(f"perf trajectory [{scale}] -> {args.out}")
    print(f"  scheduler  lanes {m['scheduler_lanes_events_per_s'] / 1e6:.2f}M ev/s"
          f"  heap {m['scheduler_heap_events_per_s'] / 1e6:.2f}M ev/s"
          f"  ({m['scheduler_lanes_speedup']:.2f}x)")
    print(f"  matching   counting {m['matching_counting_events_per_s'] / 1e3:.1f}k ev/s"
          f"  scan {m['matching_scan_events_per_s'] / 1e3:.1f}k ev/s"
          f"  ({m['matching_counting_speedup']:.1f}x)")
    print(f"  batching   batch {m['matching_batch_events_per_s'] / 1e3:.1f}k ev/s"
          f"  ({m['matching_batch_speedup']:.2f}x vs per-event counting)")
    print(f"  ctrl plane churn {m['control_plane_incremental_ops_per_s'] / 1e3:.1f}k ops/s"
          f" ({m['control_plane_churn_speedup']:.0f}x vs rebuild),"
          f" withdraw {m['control_plane_withdraw_indexed_ops_per_s']:.0f} ops/s"
          f" ({m['control_plane_withdraw_speedup']:.1f}x vs scan),"
          f" fig5a conn=1s {m['control_plane_fig5a_conn1_wall_s']:.2f}s")
    print(f"  reliable   off {m['reliability_off_wall_s']:.2f}s"
          f"  on {m['reliability_on_wall_s']:.2f}s"
          f"  ({m['reliability_overhead']:.2f}x overhead)")
    print(f"  durable    on {m['durability_on_wall_s']:.2f}s"
          f"  ({m['durability_overhead']:.2f}x over reliable)")
    print(f"  fig5 sweep {m['fig5a_wall_s']:.2f}s wall,"
          f" {m['fig5a_sim_events']:.0f} sim events"
          f" ({m['fig5a_sim_events_per_s'] / 1e3:.0f}k ev/s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
