"""Microbenchmark: control-plane churn — the cost of *changing* routing state.

Mobility protocols edit filter tables on every handoff, so at short
connection periods (the left edge of Figure 5a) the simulator's wall time
is dominated by routing-state *mutation*, not event matching. Three
measurements track that cost:

* **interval churn** — subscribe/unsubscribe churn against one
  :class:`~repro.pubsub.interval_index.IntervalIndex` at 2 000 installed
  filters: each op removes a filter, installs a replacement, and runs the
  stab + containment queries a propagation step performs. The incremental
  index (bisect insert/delete + local prefix-maxima repair) is compared
  against the legacy rebuild-per-mutation path
  (``IntervalIndex(incremental=False)``); ``test_incremental_beats_rebuild_churn``
  is the CI acceptance gate (≥5x).
* **withdraw-with-covering** — a real broker network (sub-unsub baseline,
  covering-pruned propagation) with 2 000 subscriptions rooted at one
  broker, churned by unsubscribe/resubscribe cycles whose floods the
  neighbours process too. Indexed covering (``covering_index=True``:
  CoveringIndex-backed ``advertised_covers`` + covered-candidate
  enumeration in ``Broker._withdraw``) against the legacy full-table scans.
  Both runs must leave byte-identical routing state (asserted).
* **fig5a conn=1s** — wall time of the churn-heaviest Figure 5 sweep point,
  the end-to-end number the two micro-measurements serve.

``benchmarks/perf_trajectory.py`` records all three into BENCH_core.json
(``control_plane_*`` keys) so the trajectory across PRs stays visible.
"""

from __future__ import annotations

import random
import time

from repro.experiments.config import bench_scale
from repro.experiments.figures import run_fig5
from repro.pubsub.filters import RangeFilter
from repro.pubsub.interval_index import IntervalIndex
from repro.pubsub.system import PubSubSystem

N_FILTERS = 2_000
N_CHURN_OPS = 2_000
#: withdraw bench: unsubscribe/resubscribe cycles driven through the broker
N_WITHDRAW_OPS = 150


# ---------------------------------------------------------------------------
# interval-index churn (the per-structure cost)
# ---------------------------------------------------------------------------
def build_index(incremental: bool, n: int = N_FILTERS) -> IntervalIndex:
    rnd = random.Random(7)
    idx = IntervalIndex(incremental=incremental)
    for i in range(n):
        lo = rnd.uniform(0.0, 0.999)
        idx.add(i, lo, lo + 2.0 / n)
    idx.stab(0.5)  # build the sorted arrays outside the timed window
    return idx


def churn_index(idx: IntervalIndex, ops: int = N_CHURN_OPS, n: int = N_FILTERS) -> int:
    """One handoff-shaped op: drop a filter, install a replacement, query."""
    rnd = random.Random(13)
    hits = 0
    for j in range(ops):
        key = j % n
        idx.discard(key)
        lo = rnd.uniform(0.0, 0.999)
        idx.add(key, lo, lo + 2.0 / n)
        if idx.stab(rnd.random()):
            hits += 1
        idx.contains_interval(lo, lo + 1.0 / n)
    return hits


def _best_of(n: int, fn, *args) -> float:
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def measure_interval_churn(
    ops: int = N_CHURN_OPS, repeats: int = 3
) -> dict[str, float]:
    """Best-of-``repeats`` churn timing for both index modes.

    Single source of truth for the CI acceptance gate and the
    BENCH_core.json ``control_plane_*`` churn keys.
    """
    # same churn stream on both modes; results must agree (sanity)
    incr = build_index(True)
    rebuild = build_index(False)
    assert churn_index(incr, 50) == churn_index(rebuild, 50)
    t_incr = _best_of(repeats, churn_index, build_index(True), ops)
    t_rebuild = _best_of(repeats, churn_index, build_index(False), ops)
    return {
        "ops": float(ops),
        "n_filters": float(N_FILTERS),
        "incremental_s": t_incr,
        "rebuild_s": t_rebuild,
        "incremental_ops_per_s": ops / t_incr,
        "rebuild_ops_per_s": ops / t_rebuild,
        "speedup": t_rebuild / t_incr,
    }


# ---------------------------------------------------------------------------
# withdraw-with-covering (the broker-level cost)
# ---------------------------------------------------------------------------
def build_covering_system(covering_index: bool, n: int = N_FILTERS):
    """A broker network with ``n`` covering-pruned subscriptions rooted at
    the centre broker, flood fully propagated."""
    system = PubSubSystem(
        grid_k=3,
        protocol="sub-unsub",
        seed=5,
        covering_enabled=True,
        covering_index=covering_index,
    )
    broker = system.brokers[4]
    rnd = random.Random(11)
    for i in range(n):
        lo = rnd.uniform(0.0, 0.999)
        broker.local_subscribe(
            10_000 + i, ("s", i), RangeFilter(lo, lo + 2.0 / n),
            "sub", live=True,
        )
    system.sim.run()
    return system, broker


def churn_withdrawals(system, broker, ops: int = N_WITHDRAW_OPS,
                      n: int = N_FILTERS) -> None:
    """Unsubscribe/resubscribe cycles: every op withdraws one subscription
    (covering re-advertisement search at this broker and every broker the
    flood reaches) and installs a replacement."""
    rnd = random.Random(17)
    for j in range(ops):
        i = j % n
        broker.local_unsubscribe_key(("s", i), "unsub")
        lo = rnd.uniform(0.0, 0.999)
        broker.local_subscribe(
            10_000 + i, ("s", i), RangeFilter(lo, lo + 2.0 / n),
            "sub", live=True,
        )
        system.sim.run()


def measure_withdraw_covering(ops: int = N_WITHDRAW_OPS) -> dict[str, float]:
    """Withdraw churn wall time, indexed covering vs legacy scans.

    Both systems process the identical message stream; their final routing
    state must match entry-for-entry (asserted — the indexed path may only
    be faster, never different).
    """
    timings: dict[bool, float] = {}
    states = {}
    for covering_index in (True, False):
        system, broker = build_covering_system(covering_index)
        t0 = time.perf_counter()
        churn_withdrawals(system, broker, ops)
        timings[covering_index] = time.perf_counter() - t0
        states[covering_index] = {
            bid: (
                b.table.snapshot_broker_filters(),
                b.table.snapshot_advertised(),
            )
            for bid, b in system.brokers.items()
        }
    assert states[True] == states[False], (
        "indexed covering diverged from the legacy scan path"
    )
    return {
        "ops": float(ops),
        "n_filters": float(N_FILTERS),
        "indexed_s": timings[True],
        "legacy_s": timings[False],
        "indexed_ops_per_s": ops / timings[True],
        "legacy_ops_per_s": ops / timings[False],
        "speedup": timings[False] / timings[True],
    }


# ---------------------------------------------------------------------------
# end to end: the churn-heaviest figure point
# ---------------------------------------------------------------------------
def measure_fig5a_conn1(scale: str | None = None) -> dict[str, float]:
    """Wall time of the Figure 5 sweep's conn=1s point (max handoff churn)."""
    t0 = time.perf_counter()
    rows = run_fig5(scale=scale or bench_scale(), conn_periods_s=(1.0,), seed=1)
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "runs": float(len(rows)),
        "sim_events": float(sum(r.sim_events for r in rows)),
    }


# ---------------------------------------------------------------------------
# tracked benchmarks
# ---------------------------------------------------------------------------
def test_bench_interval_churn_incremental(benchmark):
    idx = build_index(True)
    hits = benchmark(churn_index, idx)
    benchmark.extra_info["hits"] = hits


def test_bench_interval_churn_rebuild(benchmark):
    idx = build_index(False)
    hits = benchmark(churn_index, idx)
    benchmark.extra_info["hits"] = hits


def test_bench_withdraw_covering_indexed(benchmark):
    system, broker = build_covering_system(True)
    benchmark.pedantic(
        churn_withdrawals, args=(system, broker, 50),
        rounds=1, iterations=1, warmup_rounds=0,
    )


def test_bench_fig5a_conn1(benchmark):
    m = benchmark.pedantic(
        measure_fig5a_conn1, rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info["sim_events"] = m["sim_events"]


# ---------------------------------------------------------------------------
# acceptance comparisons
# ---------------------------------------------------------------------------
def test_incremental_beats_rebuild_churn():
    """Acceptance: ≥5x subscribe/unsubscribe churn throughput at 2k filters."""
    m = measure_interval_churn()
    assert m["speedup"] >= 5.0, (
        f"incremental {m['incremental_ops_per_s']:,.0f} ops/s vs rebuild "
        f"{m['rebuild_ops_per_s']:,.0f} ops/s — only {m['speedup']:.1f}x "
        f"at {N_FILTERS} filters"
    )


def test_indexed_covering_beats_scan_withdraw():
    """Acceptance: indexed covering wins the withdraw churn (and agrees)."""
    m = measure_withdraw_covering()
    assert m["speedup"] >= 1.5, (
        f"indexed {m['indexed_ops_per_s']:.1f} ops/s vs legacy "
        f"{m['legacy_ops_per_s']:.1f} ops/s — only {m['speedup']:.2f}x"
    )
