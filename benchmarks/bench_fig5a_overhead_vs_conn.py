"""Figure 5(a): message overhead per handoff vs mean connection period.

Regenerates the full sweep (three protocols x five connection periods,
100 base stations at paper scale) and asserts the paper's qualitative
shape:

* home-broker overhead grows steeply with the connection period (triangle
  routing amortised over ever fewer handoffs) and crosses above both other
  protocols;
* MHH stays flat and is the cheapest protocol at long connection periods;
* sub-unsub sits above MHH at every point (subscription floods + backlog
  re-shipping).
"""

from __future__ import annotations

from benchmarks.conftest import run_once, series_by_protocol
from repro.experiments.config import bench_scale
from repro.experiments.figures import fig5a, run_fig5
from repro.experiments.report import format_series


def test_fig5a_overhead_vs_conn_period(benchmark):
    scale = bench_scale()
    rows = run_once(benchmark, run_fig5, scale=scale, seed=1)
    series = fig5a(rows)
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["series"] = {
        p: [(x, y) for x, y in pts] for p, pts in series.items()
    }
    print()
    print(format_series(series, "conn_period_s", "msg overhead / handoff",
                        title=f"Figure 5(a) [{scale}]"))

    mhh = series_by_protocol(series, "mhh")
    hb = series_by_protocol(series, "home-broker")
    su = series_by_protocol(series, "sub-unsub")
    xs = sorted(mhh)
    lo, hi = xs[0], xs[-1]
    # HB grows sharply with the connection period ...
    assert hb[hi] > 5 * hb[lo]
    # ... and ends far above everyone else
    assert hb[hi] > 2 * su[hi] and hb[hi] > 2 * mhh[hi]
    # MHH is flat: no point more than ~2.5x its minimum
    assert max(mhh.values()) < 2.5 * min(mhh.values()) + 10
    # sub-unsub pays floods + re-shipping above MHH at the long end
    assert su[hi] > mhh[hi]
