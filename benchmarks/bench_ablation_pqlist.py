"""Ablation: MHH with vs without the distributed PQlist (§4.3).

Without the PQlist (``mhh-nopqlist``: stop_event_migration never issued), a
frequently moving client's entire stored backlog chases it to every broker
it touches; with it, interrupted migrations leave queues in place and only
the final reconnection drains them. The ablation drives rapid movement and
compares the event-migration hop counts.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.pubsub.filters import RangeFilter
from repro.pubsub.system import PubSubSystem


def rapid_mover_run(protocol: str, moves: int = 8, backlog: int = 60,
                    seed: int = 3) -> dict:
    system = PubSubSystem(
        grid_k=5, protocol=protocol, seed=seed, migration_batch_size=1
    )
    sub = system.add_client(RangeFilter(0.0, 0.5), broker=0, mobile=True)
    pub = system.add_client(RangeFilter(0.9, 0.9), broker=12)
    sub.connect(0)
    pub.connect(12)
    system.run(until=2000.0)
    sub.disconnect()
    system.run(until=3000.0)
    for _ in range(backlog):
        pub.publish(0.2)
    system.run(until=9000.0)
    # bounce between corners faster than the backlog can be shipped
    targets = [24, 4, 20, 2, 22, 10, 14, 7]
    for t in targets[:moves]:
        sub.connect(t)
        system.run(until=system.sim.now + 80.0)
        sub.disconnect()
        system.run(until=system.sim.now + 60.0)
    sub.connect(12)
    system.sim.run()
    stats = system.metrics.delivery.stats
    assert stats.missing == 0 and stats.duplicates == 0
    return {
        "migration_hops": system.metrics.traffic.wired_hops.get(
            "event_migration", 0
        ),
        "ctrl_hops": system.metrics.traffic.wired_hops.get(
            "mobility_ctrl", 0
        ),
    }


def test_pqlist_avoids_backlog_shuttling(benchmark):
    def both():
        return (
            rapid_mover_run("mhh"),
            rapid_mover_run("mhh-nopqlist"),
        )

    with_pqlist, without = run_once(benchmark, both)
    benchmark.extra_info["with_pqlist"] = with_pqlist
    benchmark.extra_info["without_pqlist"] = without
    print(f"\nwith PQlist:    {with_pqlist}")
    print(f"without PQlist: {without}")
    # the §4.3 claim: the PQlist sharply reduces event movement under
    # frequent moving
    assert without["migration_hops"] > 1.5 * with_pqlist["migration_hops"]
