"""Ablation: MHH vs the earlier two-phase handoff under concurrency.

The paper's §2 claim: "the handoff process of a client in the MHH protocol
does not affect the event delivery of other clients, so the MHH protocol
can naturally support the concurrent moving of clients without any
performance degradation" — unlike the authors' earlier two-phase protocol
whose handoffs conflict. The bench moves many clients simultaneously and
compares mean handoff delays and the conflict count.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.workload.spec import WorkloadSpec


def concurrent_run(protocol: str, seed: int = 5):
    cfg = ExperimentConfig(
        protocol=protocol,
        grid_k=5,
        seed=seed,
        workload=WorkloadSpec(
            clients_per_broker=8,
            mobile_fraction=0.6,          # heavy concurrent movement
            mean_connected_s=30.0,
            mean_disconnected_s=30.0,
            publish_interval_s=60.0,
            duration_s=600.0,
        ),
    )
    return run_experiment(cfg)


def test_mhh_unaffected_by_concurrent_handoffs(benchmark):
    def both():
        return concurrent_run("mhh"), concurrent_run("two-phase")

    mhh_row, tp_row = run_once(benchmark, both)
    benchmark.extra_info["mean_delay_ms"] = {
        "mhh": mhh_row.mean_handoff_delay_ms,
        "two-phase": tp_row.mean_handoff_delay_ms,
    }
    print(f"\nmhh       delay: {mhh_row.mean_handoff_delay_ms:.1f} ms "
          f"(handoffs={mhh_row.handoffs})")
    print(f"two-phase delay: {tp_row.mean_handoff_delay_ms:.1f} ms "
          f"(handoffs={tp_row.handoffs})")
    # both remain reliable
    assert mhh_row.missing == 0 and mhh_row.duplicates == 0
    assert tp_row.missing == 0 and tp_row.duplicates == 0
    # identical workloads
    assert mhh_row.handoffs == tp_row.handoffs
    # conflicts delay the two-phase protocol's handoffs
    assert tp_row.mean_handoff_delay_ms >= mhh_row.mean_handoff_delay_ms
