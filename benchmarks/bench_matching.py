"""Microbenchmark: interval-index matching vs linear scan.

Every event at every broker asks "does any of this neighbour's filters
match?" — the per-neighbour :class:`IntervalIndex` answers in O(log n)
where a naive broker scans all filters. This bench quantifies the speedup
that makes paper-scale runs tractable (guides: optimize the measured hot
spot, not everything).
"""

from __future__ import annotations

import numpy as np

from repro.pubsub.interval_index import IntervalIndex

N_FILTERS = 2_000
N_QUERIES = 20_000


def make_intervals(seed: int = 0):
    rng = np.random.default_rng(seed)
    widths = rng.uniform(0.0, 0.125, N_FILTERS)
    los = rng.uniform(0.0, 1.0 - widths)
    return list(zip(los.tolist(), (los + widths).tolist()))


def queries(seed: int = 1):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1.0, N_QUERIES).tolist()


def run_indexed(intervals, points) -> int:
    idx = IntervalIndex()
    for i, (lo, hi) in enumerate(intervals):
        idx.add(i, lo, hi)
    hits = 0
    stab = idx.stab
    for x in points:
        if stab(x):
            hits += 1
    return hits


def run_linear(intervals, points) -> int:
    hits = 0
    for x in points:
        for lo, hi in intervals:
            if lo <= x <= hi:
                hits += 1
                break
    return hits


def test_indexed_matching(benchmark):
    intervals, points = make_intervals(), queries()
    hits = benchmark(run_indexed, intervals, points)
    benchmark.extra_info["hit_rate"] = hits / N_QUERIES
    assert hits == run_linear(intervals, points)  # same answers


def test_linear_scan_matching(benchmark):
    intervals, points = make_intervals(), queries()
    hits = benchmark(run_linear, intervals, points)
    assert hits > 0
