"""Ablation: grid-shortest-path vs overlay-tree unicast.

The paper's stations "connect with each other via the shortest path in the
network" (§5.1): handoff requests and queue streams use grid paths while
subscriptions and events ride the overlay tree. Routing the point-to-point
traffic over the tree instead (as a pure-overlay deployment would) pays the
tree-stretch factor on every control and migration message. The bench
quantifies that stretch for MHH.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.pubsub.system import PubSubSystem
from repro.workload.mobility_model import Workload
from repro.workload.spec import WorkloadSpec


def overhead(unicast_routing: str, k: int = 7, seed: int = 2) -> float:
    spec = WorkloadSpec(
        clients_per_broker=5,
        mean_connected_s=60.0,
        mean_disconnected_s=60.0,
        publish_interval_s=60.0,
        duration_s=600.0,
    )
    system = PubSubSystem(
        grid_k=k, protocol="mhh", seed=seed, unicast_routing=unicast_routing
    )
    workload = Workload(system, spec)
    system.run(until=spec.duration_ms)
    workload.stop()
    hops = system.metrics.traffic.overhead_hops()
    handoffs = system.metrics.handoffs.handoff_count
    for client in workload.all_clients:
        if not client.connected:
            client.connect(client.last_broker or client.home_broker)
    system.sim.run()
    stats = system.metrics.delivery.stats
    assert stats.missing == 0 and stats.duplicates == 0
    return hops / max(handoffs, 1)


def test_tree_unicast_pays_stretch_factor(benchmark):
    def both():
        return overhead("grid"), overhead("tree")

    grid_cost, tree_cost = run_once(benchmark, both)
    benchmark.extra_info["overhead_per_handoff"] = {
        "grid": grid_cost, "tree": tree_cost
    }
    print(f"\ngrid unicast: {grid_cost:.1f} hops/handoff")
    print(f"tree unicast: {tree_cost:.1f} hops/handoff")
    # the overlay tree stretches point-to-point routes
    assert tree_cost > 1.15 * grid_cost
