"""Figure 6(b): mean handoff delay vs number of base stations.

Paper shape: sub-unsub delay tracks the *maximum* broker distance (the
overlay diameter sets its safety interval) while MHH and home-broker track
the *average* distance, so sub-unsub sits far above the other two and the
gap grows with the network.
"""

from __future__ import annotations

from benchmarks.conftest import run_once, series_by_protocol
from repro.experiments.config import bench_scale
from repro.experiments.figures import fig6b, run_fig6
from repro.experiments.report import format_series

_SIZES = {"smoke": (3, 4, 5), "small": (5, 7, 10), "paper": (5, 7, 10, 12, 14)}


def test_fig6b_delay_vs_network_size(benchmark):
    scale = bench_scale()
    rows = run_once(
        benchmark, run_fig6, scale=scale, grid_sizes=_SIZES[scale], seed=1
    )
    series = fig6b(rows)
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["series"] = {
        p: [(x, y) for x, y in pts] for p, pts in series.items()
    }
    print()
    print(format_series(series, "base_stations", "handoff delay (ms)",
                        title=f"Figure 6(b) [{scale}]"))

    mhh = series_by_protocol(series, "mhh")
    hb = series_by_protocol(series, "home-broker")
    su = series_by_protocol(series, "sub-unsub")
    xs = sorted(mhh)
    hi = xs[-1]
    for x in xs:
        assert su[x] > mhh[x]
        assert su[x] > hb[x]
    # MHH tracks HB (average-distance round trips)
    assert mhh[hi] < 3 * hb[hi] + 100
    if scale != "smoke":
        # sub-unsub's *protocol* component grows with the network (its
        # safety interval is diameter-driven). At smoke scale the shared
        # waiting-for-a-fresh-event noise dominates the absolute delays, so
        # the growth is asserted on the protocol gap over MHH (the noise is
        # identical across protocols: same seeds, same workload).
        gap_lo = su[xs[0]] - mhh[xs[0]]
        gap_hi = su[hi] - mhh[hi]
        assert gap_hi > gap_lo
