"""Microbenchmark: batched vs per-event counting-engine matching.

:meth:`FilterTable.match_batch` resolves a whole event vector through the
counting engine in one pass — attribute indexes are probed per *attribute
vector* instead of per event, interval stabs hoist their tree/overlay
lookups across the batch, and the counter reset is a single epoch bump per
event instead of per-slot bookkeeping. The data plane feeds it the
same-instant lane-drain batches collected by the simulator
(``event_batching=True``), so this bench measures the kernel at the batch
boundary the broker actually sees, plus the asymptotic full-vector case.

Workload: the paper-shaped ``range`` table from
:mod:`benchmarks.bench_matching_engine` (narrow topic ranges) at 512, 2k
and 8k client filters per broker. Batch and per-event paths must produce
identical results (asserted element-for-element, order included); the
acceptance test and the ``matching_batch_*`` perf-trajectory keys hold the
speedup line at the 2k-filter gate point.
"""

from __future__ import annotations

import gc
import time

from benchmarks.bench_matching_engine import (
    N_FILTERS,
    build_table,
    make_events,
    run_matches,
)
from repro.pubsub.filter_table import FilterTable

FILTER_SWEEP = (512, 2_000, 8_000)


def run_matches_batch(table: FilterTable, events: list, chunk: int = 0) -> int:
    """Resolve ``events`` through :meth:`FilterTable.match_batch`.

    ``chunk`` splits the vector into same-size batches (0 = one batch for
    the whole vector). Returns the same hit count as
    :func:`~benchmarks.bench_matching_engine.run_matches`.
    """
    if chunk <= 0:
        chunk = len(events)
    hits = 0
    match_batch = table.match_batch
    for i in range(0, len(events), chunk):
        items = [(ev, None) for ev in events[i:i + chunk]]
        for nbrs, entries in match_batch(items):
            hits += len(nbrs) + len(entries)
    return hits


def measure_batch_matching(
    n_filters: int = N_FILTERS, n_events: int = 500, rounds: int = 9
) -> dict:
    """Paired batch-vs-single throughput at ``n_filters`` (range workload).

    One source of truth for the acceptance test below and the
    ``matching_batch_*`` perf-trajectory keys. The two paths run the same
    counting table and event vector, interleaved round-robin (sequential
    blocks let CPU warm-up drift land on one side) with best-of-``rounds``
    each; the items list is prebuilt outside the timed window because the
    broker's batch path receives it prebuilt from ``receive_batch``. GC is
    parked during the timed windows and run between rounds — a full-vector
    batch allocates thousands of result lists at once, and a collection
    landing inside one batch timing otherwise dominates the measurement.
    """
    table = build_table("counting", "range", n_filters)
    events = make_events("range", n_events)
    items = [(ev, None) for ev in events]
    # warm both paths: lazy index builds happen outside the timed window
    hits_single = run_matches(table, events)
    hits_batch = sum(
        len(nbrs) + len(entries) for nbrs, entries in table.match_batch(items)
    )
    assert hits_single == hits_batch, (
        f"batch/single hit mismatch at {n_filters} filters: "
        f"{hits_batch} != {hits_single}"
    )
    best_single = best_batch = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(rounds):
            t0 = time.perf_counter()
            run_matches(table, events)
            best_single = min(best_single, time.perf_counter() - t0)
            t0 = time.perf_counter()
            table.match_batch(items)
            best_batch = min(best_batch, time.perf_counter() - t0)
            gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "n_filters": float(n_filters),
        "n_events": float(n_events),
        "single_events_per_s": n_events / best_single,
        "batch_events_per_s": n_events / best_batch,
        "speedup": best_single / best_batch,
    }


def _bench_batch(benchmark, n_filters: int) -> None:
    table = build_table("counting", "range", n_filters)
    events = make_events("range", 500)
    run_matches_batch(table, events[:10])  # build lazy indexes
    hits = benchmark(run_matches_batch, table, events)
    benchmark.extra_info["hits"] = hits
    assert hits == run_matches(table, events)


def test_bench_batch_range_512(benchmark):
    _bench_batch(benchmark, 512)


def test_bench_batch_range_2k(benchmark):
    _bench_batch(benchmark, 2_000)


def test_bench_batch_range_8k(benchmark):
    _bench_batch(benchmark, 8_000)


def test_bench_single_range_2k(benchmark):
    # the per-event side of the comparison, same table and vector
    table = build_table("counting", "range", 2_000)
    events = make_events("range", 500)
    run_matches(table, events[:10])
    assert benchmark(run_matches, table, events) > 0


def test_batch_beats_single_across_sweep():
    """Acceptance: batching wins at every filter count in the sweep.

    The tight ≥2x line at the 2k gate point is held by
    ``compare_trajectory.py`` on the ``matching_batch_speedup`` trajectory
    key; here each sweep point must simply beat the per-event path.
    """
    for n_filters in FILTER_SWEEP:
        m = measure_batch_matching(n_filters, n_events=300, rounds=5)
        assert m["speedup"] > 1.0, (
            f"{n_filters} filters: batch matching "
            f"{m['batch_events_per_s']:.0f} ev/s not faster than per-event "
            f"{m['single_events_per_s']:.0f} ev/s ({m['speedup']:.2f}x)"
        )
