"""Shared benchmark utilities.

Every benchmark runs a complete simulation (or sweep) exactly once per
timing round — simulations are deterministic per seed, so repeated timing
rounds would only re-measure identical work. The *figure* benches attach
the regenerated series to ``benchmark.extra_info`` so the recorded .json
artifacts carry the reproduced numbers alongside the timings, and they
assert the paper's qualitative shapes (who wins, where the crossovers
fall).

Scale: ``MHH_BENCH_SCALE`` environment variable — ``smoke`` (default; CI
speed), ``small``, or ``paper`` (full Section 5.1 parameters; minutes per
figure). EXPERIMENTS.md records a paper-scale run.
"""

from __future__ import annotations

from typing import Callable

import pytest


def run_once(benchmark, fn: Callable, *args, **kwargs):
    """Time ``fn`` with one round/one iteration (deterministic workloads)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def series_by_protocol(series: dict, protocol: str) -> dict:
    """x -> y lookup for one protocol's series."""
    return {x: y for x, y in series[protocol]}


@pytest.fixture
def bench_once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
