"""Figure 5(b): mean handoff delay vs mean connection period.

Paper shape: sub-unsub delay is far above MHH and home-broker at every
connection period (the client must wait out the safety interval and the
merge); MHH and home-broker are close to each other (both need roughly one
control round trip plus the first event's flight).
"""

from __future__ import annotations

from benchmarks.conftest import run_once, series_by_protocol
from repro.experiments.config import bench_scale
from repro.experiments.figures import fig5b, run_fig5
from repro.experiments.report import format_series


def test_fig5b_delay_vs_conn_period(benchmark):
    scale = bench_scale()
    rows = run_once(benchmark, run_fig5, scale=scale, seed=1)
    series = fig5b(rows)
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["series"] = {
        p: [(x, y) for x, y in pts] for p, pts in series.items()
    }
    print()
    print(format_series(series, "conn_period_s", "handoff delay (ms)",
                        title=f"Figure 5(b) [{scale}]"))

    mhh = series_by_protocol(series, "mhh")
    hb = series_by_protocol(series, "home-broker")
    su = series_by_protocol(series, "sub-unsub")
    for x in mhh:
        if su[x] is None or mhh[x] is None or hb[x] is None:
            continue
        # sub-unsub waits out safety intervals before delivering anything
        assert su[x] > mhh[x]
        assert su[x] > hb[x]
        # MHH and HB delays are the same kind of quantity (one round trip);
        # they must be within a small factor of each other
        assert mhh[x] < 3 * hb[x] + 100
        assert hb[x] < 3 * mhh[x] + 100
