"""Microbenchmark: end-to-end event dissemination throughput.

Floods events through a static k=7 system (245 subscriptions) and measures
wall time per simulated publication — the cost driver of every figure
sweep.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.pubsub.filters import RangeFilter
from repro.pubsub.system import PubSubSystem
from repro.sim.rng import RandomStreams

N_EVENTS = 1_500


def build_static(k: int = 7, clients_per_broker: int = 5, seed: int = 3):
    system = PubSubSystem(grid_k=k, protocol="mhh", seed=seed)
    streams = RandomStreams(seed)
    sub_rng = streams.stream("bench/subs")
    for b in range(k * k):
        for _ in range(clients_per_broker):
            w = float(sub_rng.uniform(0.0, 0.125))
            lo = float(sub_rng.uniform(0.0, 1.0 - w))
            c = system.add_client(RangeFilter(lo, lo + w), broker=b)
            c.connect(b)
    system.run(until=5_000.0)
    return system


def flood(system, n: int) -> int:
    rng = RandomStreams(9).stream("bench/topics")
    publisher = next(iter(system.clients.values()))
    for _ in range(n):
        publisher.publish(float(rng.uniform()))
        system.run(until=system.sim.now + 50.0)
    system.sim.run()
    return system.metrics.delivery.stats.delivered


def test_event_dissemination_throughput(benchmark):
    def run():
        system = build_static()
        return flood(system, N_EVENTS), system

    delivered, system = run_once(benchmark, run)
    stats = system.metrics.delivery.stats
    assert stats.delivered == stats.expected
    assert stats.duplicates == 0
    benchmark.extra_info["events"] = N_EVENTS
    benchmark.extra_info["deliveries"] = delivered
