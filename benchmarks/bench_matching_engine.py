"""Microbenchmark: broker-wide counting engine vs legacy scan matching.

The scan path pays O(#client entries + #general filters) per event; the
counting engine resolves the same event from (attribute, operator) indexes
in one output-sensitive pass. This bench drives a full
:class:`~repro.pubsub.filter_table.FilterTable` — the broker hot path's
exact entry point — under two workloads at ≥1k filters per broker:

* ``range``: narrow topic-range client subscriptions (the paper's workload
  shape at production subscriber counts);
* ``conjunction``: content-based ``ConjunctionFilter`` subscriptions mixing
  EQ/RANGE/GE/PREFIX constraints (where the scan path is a pure linear
  evaluation).

Both modes must produce identical match results (asserted); the comparison
test asserts the counting engine wins at this scale.
"""

from __future__ import annotations

import time

import numpy as np

from repro.pubsub.events import Notification
from repro.pubsub.filter_table import ClientEntry, FilterTable
from repro.pubsub.filters import (
    AttributeConstraint,
    ConjunctionFilter,
    Op,
    RangeFilter,
)

N_FILTERS = 2_000
N_NEIGHBOR_FILTERS = 200
N_EVENTS = 2_000
NEIGHBORS = [1, 2, 3, 4]


def build_table(mode: str, workload: str, n_filters: int = N_FILTERS) -> FilterTable:
    rng = np.random.default_rng(7)
    table = FilterTable(0, NEIGHBORS, engine=mode)
    # neighbour side: narrow topic ranges advertised by the 4 peers
    for i in range(N_NEIGHBOR_FILTERS):
        lo = float(rng.uniform(0.0, 0.999))
        table.add_broker_filter(
            NEIGHBORS[i % len(NEIGHBORS)], f"n{i}",
            RangeFilter(lo, min(1.0, lo + 0.001)),
        )
    # client side: the broker-local subscriber population
    for i in range(n_filters):
        if workload == "range":
            lo = float(rng.uniform(0.0, 1.0 - 2.0 / n_filters))
            f = RangeFilter(lo, lo + 2.0 / n_filters)
        else:
            lo_t = float(rng.uniform(0.0, 0.98))
            lo_s = float(rng.uniform(0.0, 95.0))
            f = ConjunctionFilter([
                AttributeConstraint("kind", Op.EQ, f"k{i % 200}"),
                AttributeConstraint("topic", Op.RANGE, (lo_t, lo_t + 0.02)),
                AttributeConstraint("size", Op.RANGE, (lo_s, lo_s + 5.0)),
            ])
        table.set_client_entry(ClientEntry(i, ("c", i), f))
    return table


def make_events(workload: str, n_events: int = N_EVENTS) -> list[Notification]:
    rng = np.random.default_rng(13)
    events = []
    for i in range(n_events):
        attrs = None
        if workload == "conjunction":
            attrs = {"kind": f"k{int(rng.integers(0, 240))}",
                     "size": float(rng.uniform(0.0, 120.0))}
        events.append(
            Notification(i, 0, i, 0.0, float(rng.uniform(0.0, 1.0)), attrs)
        )
    return events


def run_matches(table: FilterTable, events: list[Notification]) -> int:
    hits = 0
    match = table.match
    for ev in events:
        nbrs, entries = match(ev, None)
        hits += len(nbrs) + len(entries)
    return hits


def _timed(fn, *args) -> tuple[float, int]:
    t0 = time.perf_counter()
    out = fn(*args)
    return time.perf_counter() - t0, out


def test_bench_counting_range(benchmark):
    table = build_table("counting", "range")
    events = make_events("range")
    hits = benchmark(run_matches, table, events)
    benchmark.extra_info["hits"] = hits
    assert hits == run_matches(build_table("scan", "range"), events)


def test_bench_scan_range(benchmark):
    table = build_table("scan", "range")
    events = make_events("range")
    assert benchmark(run_matches, table, events) > 0


def test_bench_counting_conjunction(benchmark):
    table = build_table("counting", "conjunction")
    events = make_events("conjunction")
    hits = benchmark(run_matches, table, events)
    benchmark.extra_info["hits"] = hits
    assert hits == run_matches(build_table("scan", "conjunction"), events)


def test_bench_scan_conjunction(benchmark):
    table = build_table("scan", "conjunction")
    events = make_events("conjunction")
    assert benchmark(run_matches, table, events) > 0


def test_counting_beats_scan_at_scale():
    """Acceptance: the counting engine wins at ≥1k filters per broker."""
    for workload in ("range", "conjunction"):
        counting = build_table("counting", workload)
        scan = build_table("scan", workload)
        events = make_events(workload, 500)
        # warm both (build lazy indexes outside the timed window)
        assert run_matches(counting, events[:10]) == run_matches(scan, events[:10])
        t_counting, h1 = _timed(run_matches, counting, events)
        t_scan, h2 = _timed(run_matches, scan, events)
        assert h1 == h2
        assert t_counting < t_scan, (
            f"{workload}: counting {t_counting:.4f}s not faster than "
            f"scan {t_scan:.4f}s at {N_FILTERS} filters"
        )
