"""Ablation: covering-based subscription propagation pruning.

The paper attributes the sub-unsub baseline's sub-linear overhead growth
(Figure 6(a)) to the covering relation: "a subscription is more likely to
be covered by other subscriptions" as the network grows. This ablation
measures the per-handoff subscription-flood cost of sub-unsub with
covering on vs off at two network sizes. With this library's range
workload covering is extremely effective (DESIGN.md discusses why), which
is exactly what the bench demonstrates.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.workload.spec import WorkloadSpec


def flood_cost(k: int, covering: bool, seed: int = 2) -> float:
    cfg = ExperimentConfig(
        protocol="sub-unsub",
        grid_k=k,
        seed=seed,
        covering_enabled=covering,
        workload=WorkloadSpec(
            clients_per_broker=5,
            mean_connected_s=60.0,
            mean_disconnected_s=60.0,
            publish_interval_s=120.0,
            duration_s=600.0,
        ),
    )
    row = run_experiment(cfg)
    assert row.missing == 0 and row.duplicates == 0
    floods = row.overhead_by_category.get("sub_handoff", 0)
    return floods / max(row.handoffs, 1)


def test_covering_prunes_subscription_floods(benchmark):
    def sweep():
        return {
            (k, cov): flood_cost(k, cov)
            for k in (4, 6)
            for cov in (False, True)
        }

    costs = run_once(benchmark, sweep)
    benchmark.extra_info["flood_hops_per_handoff"] = {
        f"k={k} covering={cov}": v for (k, cov), v in costs.items()
    }
    print()
    for (k, cov), v in sorted(costs.items()):
        print(f"  k={k} covering={cov!s:5}: {v:8.1f} flood hops/handoff")
    for k in (4, 6):
        # covering prunes the floods
        assert costs[(k, True)] < 0.8 * costs[(k, False)]
    # without covering the flood cost grows roughly with broker count
    assert costs[(6, False)] > 1.5 * costs[(4, False)]
    # covering gets relatively *more* effective with more subscriptions in
    # the system — the paper's Figure 6(a) argument
    ratio_small = costs[(4, True)] / costs[(4, False)]
    ratio_large = costs[(6, True)] / costs[(6, False)]
    assert ratio_large < ratio_small
